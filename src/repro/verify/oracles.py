"""Invariant oracles: slow-but-obviously-correct re-implementations.

Every quality metric the production code computes with vectorized numpy
(lexsorts, bincounts, fused masks) is re-derived here with plain Python
loops, sets and dicts — directly transcribing the paper's definitions:

* balance (Eq. 1): ``W_k <= W_avg * (1 + eps)`` for every part;
* cut-net cutsize (Eq. 2): ``sum of c_j over nets with lambda_j > 1``;
* connectivity-1 cutsize (Eq. 3): ``sum of c_j * (lambda_j - 1)``;
* the consistency condition of §3 (diagonal vertex of every column pinned
  in both its row net and its column net; dummies weightless);
* the expand+fold communication volume, recomputed from the ownership
  arrays of the :class:`~repro.core.decomposition.Decomposition` itself —
  independently of both the partitioner and the vectorized simulator.

:func:`check_all` runs the oracles against their production counterparts
and returns a structured :class:`VerificationReport`;
:func:`verify_decompose` rebuilds the hypergraph model of a
:func:`repro.decompose` result from scratch and audits the whole chain,
including the paper's central theorem (Eq. 3 cutsize == measured volume).

These functions are O(pins) with Python-level constants — run them on test
instances and saved partitions, not in inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.decomposition import Decomposition
from repro.core.finegrain import FineGrainModel, build_finegrain_model
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import (
    compute_part_weights,
    cutsize_connectivity,
    cutsize_cutnet,
    imbalance,
    net_connectivities,
    net_connectivity_sets,
)
from repro.models.onedim import build_columnnet_model, build_rownet_model
from repro.spmv.simulator import communication_stats

__all__ = [
    "CheckResult",
    "VerificationReport",
    "VerificationError",
    "oracle_part_weights",
    "oracle_imbalance",
    "oracle_is_balanced",
    "oracle_connectivity_sets",
    "oracle_net_connectivities",
    "oracle_cutsize_connectivity",
    "oracle_cutsize_cutnet",
    "oracle_validate",
    "oracle_consistency",
    "oracle_volume",
    "exact_optimality_gap",
    "check_partition",
    "check_decomposition",
    "check_all",
    "verify_decompose",
]

#: default branch-and-bound node budget for ``exact_gap`` audits — enough
#: to certify every coarsest-level-sized instance the test corpus uses,
#: small enough that an accidental large instance degrades to
#: ``proven=False`` instead of hanging the audit
DEFAULT_EXACT_NODES = 200_000


class VerificationError(AssertionError):
    """A verification report contained failed checks."""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one oracle check."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok  " if self.passed else "FAIL"
        tail = f"  {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{tail}"


@dataclass
class VerificationReport:
    """Structured outcome of a verification run."""

    #: what was verified, e.g. ``decompose(method=finegrain, k=8)``
    subject: str
    checks: list[CheckResult] = field(default_factory=list)
    #: structured side-band data (e.g. the ``"exact"`` optimality-gap
    #: record) — serialized by :meth:`to_dict` alongside the checks
    extras: dict = field(default_factory=dict)

    def add(self, name: str, passed: bool, detail: str = "") -> bool:
        """Record one check; returns ``passed`` for chaining."""
        self.checks.append(CheckResult(name, bool(passed), detail))
        return bool(passed)

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        """The failed checks only."""
        return [c for c in self.checks if not c.passed]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        n_fail = len(self.failures)
        head = (
            f"verify {self.subject}: "
            f"{len(self.checks) - n_fail}/{len(self.checks)} checks passed"
        )
        return "\n".join([head] + [f"  {c}" for c in self.checks])

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` when any check failed."""
        if not self.passed:
            lines = [f"{self.subject}: {len(self.failures)} check(s) failed"]
            lines += [f"  {c}" for c in self.failures]
            raise VerificationError("\n".join(lines))

    def to_dict(self) -> dict:
        """JSON-friendly form."""
        doc = {
            "subject": self.subject,
            "passed": self.passed,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
        }
        if self.extras:
            doc["extras"] = self.extras
        return doc


# ----------------------------------------------------------------------
# pure-Python reference implementations
# ----------------------------------------------------------------------
def oracle_part_weights(h: Hypergraph, part, k: int) -> list[int]:
    """Eq. 1 part weights ``W_k``, one vertex at a time."""
    w = [0] * k
    for v in range(h.num_vertices):
        w[int(part[v])] += int(h.vertex_weights[v])
    return w


def oracle_imbalance(h: Hypergraph, part, k: int) -> float:
    """``(W_max - W_avg) / W_avg`` from the oracle part weights."""
    w = oracle_part_weights(h, part, k)
    avg = sum(int(x) for x in h.vertex_weights) / k
    if avg == 0:
        return 0.0
    return (max(w) - avg) / avg


def oracle_is_balanced(h: Hypergraph, part, k: int, epsilon: float) -> bool:
    """The balance criterion of Eq. 1, checked literally per part."""
    w = oracle_part_weights(h, part, k)
    avg = sum(w) / k
    return all(wk <= avg * (1.0 + epsilon) + 1e-9 for wk in w)


def oracle_connectivity_sets(h: Hypergraph, part) -> list[set]:
    """``Lambda_j``: the set of parts each net connects, via Python sets."""
    lam: list[set] = []
    for j in range(h.num_nets):
        lam.append({int(part[int(v)]) for v in h.pins_of(j)})
    return lam


def oracle_net_connectivities(h: Hypergraph, part) -> list[int]:
    """``lambda_j = |Lambda_j|`` per net (0 for empty nets)."""
    return [len(s) for s in oracle_connectivity_sets(h, part)]


def oracle_cutsize_connectivity(h: Hypergraph, part) -> int:
    """Eq. 3: ``sum of c_j * (lambda_j - 1)`` over non-empty nets."""
    total = 0
    for j, lam in enumerate(oracle_net_connectivities(h, part)):
        if lam > 0:
            total += int(h.net_costs[j]) * (lam - 1)
    return total


def oracle_cutsize_cutnet(h: Hypergraph, part) -> int:
    """Eq. 2: ``sum of c_j`` over nets with ``lambda_j > 1``."""
    total = 0
    for j, lam in enumerate(oracle_net_connectivities(h, part)):
        if lam > 1:
            total += int(h.net_costs[j])
    return total


def oracle_validate(h: Hypergraph, part, k: int) -> list[str]:
    """Problems making *part* an invalid K-way partition (empty if valid)."""
    problems: list[str] = []
    part = np.asarray(part)
    if part.shape != (h.num_vertices,):
        return [
            f"partition length {part.shape} != num_vertices {h.num_vertices}"
        ]
    for v in range(h.num_vertices):
        p = int(part[v])
        if not (0 <= p < k):
            problems.append(f"vertex {v} has part id {p} outside [0, {k})")
            if len(problems) >= 5:
                problems.append("... (truncated)")
                break
    if h.fixed is not None:
        for v in range(h.num_vertices):
            f = int(h.fixed[v])
            if f >= 0 and int(part[v]) != f:
                problems.append(f"vertex {v} fixed to {f} but placed in {int(part[v])}")
    return problems


def oracle_consistency(model: FineGrainModel, part=None) -> list[str]:
    """Violations of the §3 consistency condition (empty if it holds).

    Checks structurally that every column *j* has a diagonal vertex
    ``v_jj`` pinned in both its row net ``m_j`` and its column net ``n_j``,
    and that every dummy vertex carries weight 0 (so Eq. 1 is untouched).
    Given *part*, additionally confirms the decode
    ``map[n_j] = map[m_j] = part[v_jj]`` lands in both connectivity sets —
    the property that makes volume == cutsize exact.
    """
    h = model.hypergraph
    problems: list[str] = []
    for v in range(model.nnz, h.num_vertices):
        if int(h.vertex_weights[v]) != 0:
            problems.append(
                f"dummy vertex {v} has weight {int(h.vertex_weights[v])} != 0"
            )
    for j in range(len(model.diag_vertex)):
        dv = int(model.diag_vertex[j])
        if dv < 0:
            problems.append(f"column {j} has no diagonal vertex")
            continue
        row_pins = {int(v) for v in h.pins_of(model.row_net(j))}
        col_pins = {int(v) for v in h.pins_of(model.col_net(j))}
        if dv not in row_pins:
            problems.append(f"diagonal vertex of column {j} not pinned in row net m_{j}")
        if dv not in col_pins:
            problems.append(f"diagonal vertex of column {j} not pinned in column net n_{j}")
        if part is not None:
            owner = int(part[dv])
            lam_row = {int(part[int(v)]) for v in row_pins}
            lam_col = {int(part[int(v)]) for v in col_pins}
            if row_pins and owner not in lam_row:
                problems.append(f"decode of y_{j} ({owner}) outside Lambda[m_{j}]")
            if col_pins and owner not in lam_col:
                problems.append(f"decode of x_{j} ({owner}) outside Lambda[n_{j}]")
    return problems


def oracle_volume(dec: Decomposition) -> dict:
    """Expand+fold communication volume, recomputed element by element.

    For every column *j*: the owner of ``x_j`` sends one word to each
    *other* processor holding a nonzero of column *j* (expand).  For every
    row *i*: each *other* processor holding a nonzero of row *i* sends one
    partial sum to the owner of ``y_i`` (fold).  Pure dict-of-sets
    accounting — no unique/bincount tricks shared with the simulator.
    """
    col_holders: dict[int, set] = {}
    row_holders: dict[int, set] = {}
    for e in range(dec.nnz):
        p = int(dec.nnz_owner[e])
        col_holders.setdefault(int(dec.nnz_col[e]), set()).add(p)
        row_holders.setdefault(int(dec.nnz_row[e]), set()).add(p)
    expand = 0
    for j, holders in col_holders.items():
        expand += len(holders - {int(dec.x_owner[j])})
    fold = 0
    for i, holders in row_holders.items():
        fold += len(holders - {int(dec.y_owner[i])})
    return {"expand": expand, "fold": fold, "total": expand + fold}


# ----------------------------------------------------------------------
# exact optimality gap (k=2 only; see repro.exact)
# ----------------------------------------------------------------------
def exact_optimality_gap(
    h: Hypergraph,
    part,
    *,
    epsilon: float = 0.03,
    max_nodes: int | None = DEFAULT_EXACT_NODES,
    objective: str = "connectivity",
) -> dict:
    """True optimality gap of a bipartition via the branch-and-bound solver.

    Returns a JSON-friendly record: the heuristic's ``(excess, cut)`` key,
    the exact solver's certified (or best-found) key, ``gap = cut -
    exact_cut`` and ``proven``.  The gap is only a certificate when
    ``proven`` is true; comparisons use the lexicographic key, so a
    balance-infeasible heuristic partition is never reported as "beating"
    a feasible optimum.
    """
    from repro.exact import bisection_bounds, exact_bisection

    part = np.asarray(part)
    res = exact_bisection(
        h, epsilon, objective, max_nodes=max_nodes, fixed=h.fixed
    )
    _, maxw = bisection_bounds(h, epsilon)
    w = oracle_part_weights(h, part, 2)
    excess = max(0, w[0] - maxw[0]) + max(0, w[1] - maxw[1])
    cut = (
        oracle_cutsize_cutnet(h, part)
        if objective == "cutnet"
        else oracle_cutsize_connectivity(h, part)
    )
    return {
        "objective": objective,
        "cut": cut,
        "excess": excess,
        "exact_cut": res.cutsize,
        "exact_excess": res.excess,
        "gap": cut - res.cutsize,
        "proven": res.proven,
        "nodes": res.nodes,
        "runtime": res.runtime,
        "max_weights": list(maxw),
    }


# ----------------------------------------------------------------------
# structured cross-checks (oracle vs production)
# ----------------------------------------------------------------------
def check_partition(
    h: Hypergraph,
    part,
    k: int | None = None,
    *,
    epsilon: float = 0.03,
    expected_cutsize: int | None = None,
    strict_balance: bool = False,
    exact_gap: bool = False,
    exact_nodes: int | None = DEFAULT_EXACT_NODES,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Audit a partition: validity, balance, and every metric cross-checked
    against its vectorized production implementation.

    *part* may be a plain ndarray/list, or an
    :class:`~repro.exact.ExactResult` (the solver's own output is then
    audited directly, its claimed cutsize becoming ``expected_cutsize``) —
    no driver-produced ``PartitionResult`` is required.  With
    ``exact_gap=True`` (k=2 only) the branch-and-bound solver runs under
    ``exact_nodes`` and the true optimality gap lands in
    ``report.extras["exact"]`` (and thus ``to_dict()``).
    """
    if hasattr(part, "part") and hasattr(part, "cutsize"):
        # an ExactResult (or duck-typed equivalent): audit its own vector
        # and hold it to the cutsize it claims
        if expected_cutsize is None:
            expected_cutsize = int(part.cutsize)
        part = part.part
    part = np.asarray(part)
    if k is None:
        k = int(part.max()) + 1 if len(part) else 1
    rep = report or VerificationReport(subject=f"partition(k={k})")

    problems = oracle_validate(h, part, k)
    rep.add("partition.valid", not problems, "; ".join(problems))
    if problems:
        return rep  # metrics on an invalid partition are meaningless

    w_oracle = oracle_part_weights(h, part, k)
    w_fast = compute_part_weights(h, part, k)
    rep.add(
        "metrics.part_weights",
        list(w_fast) == w_oracle,
        f"oracle={w_oracle} vectorized={list(map(int, w_fast))}",
    )

    imb_oracle = oracle_imbalance(h, part, k)
    imb_fast = imbalance(h, part, k)
    rep.add(
        "metrics.imbalance",
        abs(imb_oracle - imb_fast) < 1e-9,
        f"oracle={imb_oracle:.6f} vectorized={imb_fast:.6f}",
    )
    if strict_balance:
        rep.add(
            "partition.balance",
            oracle_is_balanced(h, part, k, epsilon),
            f"imbalance={imb_oracle:.4f} epsilon={epsilon}",
        )

    lam_oracle = oracle_connectivity_sets(h, part)
    lam_fast = net_connectivity_sets(h, part)
    sets_ok = all(
        set(int(p) for p in lam_fast[j]) == lam_oracle[j]
        for j in range(h.num_nets)
    )
    rep.add("metrics.connectivity_sets", sets_ok)
    lam_counts = net_connectivities(h, part)
    rep.add(
        "metrics.connectivities",
        [int(x) for x in lam_counts] == [len(s) for s in lam_oracle],
    )

    cut_oracle = oracle_cutsize_connectivity(h, part)
    cut_fast = cutsize_connectivity(h, part)
    rep.add(
        "metrics.cutsize_connectivity",
        cut_oracle == cut_fast,
        f"oracle={cut_oracle} vectorized={cut_fast}",
    )
    cn_oracle = oracle_cutsize_cutnet(h, part)
    cn_fast = cutsize_cutnet(h, part)
    rep.add(
        "metrics.cutsize_cutnet",
        cn_oracle == cn_fast,
        f"oracle={cn_oracle} vectorized={cn_fast}",
    )
    if expected_cutsize is not None:
        rep.add(
            "partition.cutsize",
            cut_oracle == int(expected_cutsize),
            f"oracle={cut_oracle} reported={int(expected_cutsize)}",
        )

    if exact_gap:
        if k != 2:
            rep.add(
                "exact.gap",
                True,
                f"skipped: the exact oracle certifies bipartitions only (k={k})",
            )
        else:
            gap = exact_optimality_gap(
                h, part, epsilon=epsilon, max_nodes=exact_nodes
            )
            rep.extras["exact"] = gap
            tag = "certified" if gap["proven"] else "budget-exhausted (lower bound only best-found)"
            rep.add(
                "exact.gap",
                True,
                f"gap={gap['gap']} ({tag}; exact cut={gap['exact_cut']}, "
                f"nodes={gap['nodes']})",
            )
            # optimality is a one-sided bound: no heuristic partition may
            # lexicographically beat a certified optimum — if one does,
            # the solver (not the heuristic) is wrong
            if gap["proven"]:
                h_key = (gap["excess"], gap["cut"])
                e_key = (gap["exact_excess"], gap["exact_cut"])
                rep.add(
                    "exact.lower_bound",
                    h_key >= e_key,
                    f"heuristic(excess,cut)={h_key} certified optimum={e_key}",
                )
            # at k=2 both paper objectives coincide; the exact solver's
            # claim must agree with BOTH independent oracles
            cn2 = oracle_cutsize_cutnet(h, part)
            rep.add(
                "exact.objectives_coincide",
                cut_oracle == cn2,
                f"connectivity={cut_oracle} cutnet={cn2} (must match at k=2)",
            )
    return rep


def check_decomposition(
    dec: Decomposition,
    *,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Audit a decomposition: ownership validity plus the volume oracle
    against the vectorized simulator accounting."""
    rep = report or VerificationReport(subject=f"decomposition(k={dec.k})")

    problems: list[str] = []
    for name in ("nnz_owner", "x_owner", "y_owner"):
        arr = getattr(dec, name)
        for i in range(len(arr)):
            p = int(arr[i])
            if not (0 <= p < dec.k):
                problems.append(f"{name}[{i}] = {p} outside [0, {dec.k})")
                break
    if len(dec.x_owner) != dec.n:
        problems.append(f"x_owner length {len(dec.x_owner)} != n {dec.n}")
    if len(dec.y_owner) != dec.m:
        problems.append(f"y_owner length {len(dec.y_owner)} != m {dec.m}")
    rep.add("decomposition.valid", not problems, "; ".join(problems))

    loads = dec.computational_loads()
    loads_oracle = [0] * dec.k
    for e in range(dec.nnz):
        loads_oracle[int(dec.nnz_owner[e])] += 1
    rep.add(
        "decomposition.loads",
        [int(x) for x in loads] == loads_oracle,
    )

    vol = oracle_volume(dec)
    stats = communication_stats(dec)
    rep.add(
        "volume.oracle_vs_simulator",
        vol["expand"] == int(stats.expand_volume)
        and vol["fold"] == int(stats.fold_volume),
        f"oracle={vol} simulator=(expand={int(stats.expand_volume)}, "
        f"fold={int(stats.fold_volume)})",
    )
    return rep


def check_all(
    h: Hypergraph,
    part,
    k: int | None = None,
    *,
    epsilon: float = 0.03,
    model: FineGrainModel | None = None,
    dec: Decomposition | None = None,
    expected_cutsize: int | None = None,
    cut_equals_volume: bool = False,
    strict_balance: bool = False,
    exact_gap: bool = False,
    exact_nodes: int | None = DEFAULT_EXACT_NODES,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Run every applicable oracle and return one structured report.

    ``model`` enables the §3 consistency checks (fine-grain hypergraphs);
    ``dec`` enables the decomposition/volume checks; ``cut_equals_volume``
    asserts the paper's theorem — Eq. 3 cutsize of (*h*, *part*) equals the
    expand+fold volume of *dec* exactly; ``exact_gap`` additionally runs
    the branch-and-bound optimality audit (k=2 only).
    """
    part = np.asarray(part)
    if k is None:
        k = int(part.max()) + 1 if len(part) else 1
    rep = report or VerificationReport(subject=f"check_all(k={k})")

    check_partition(
        h,
        part,
        k,
        epsilon=epsilon,
        expected_cutsize=expected_cutsize,
        strict_balance=strict_balance,
        exact_gap=exact_gap,
        exact_nodes=exact_nodes,
        report=rep,
    )
    if not rep.passed and rep.checks[-1].name == "partition.valid":
        return rep

    if model is not None:
        problems = oracle_consistency(model, part)
        rep.add("model.consistency", not problems, "; ".join(problems[:5]))

    if dec is not None:
        check_decomposition(dec, report=rep)
        if cut_equals_volume:
            vol = oracle_volume(dec)
            cut = oracle_cutsize_connectivity(h, part)
            rep.add(
                "volume.equals_cutsize",
                vol["total"] == cut,
                f"volume={vol['total']} cutsize={cut} (Eq. 3 equivalence)",
            )
    return rep


# ----------------------------------------------------------------------
# end-to-end audit of a decompose() result
# ----------------------------------------------------------------------
def verify_decompose(
    a,
    res,
    epsilon: float = 0.03,
    strict_balance: bool = False,
    exact_gap: bool = False,
    exact_nodes: int | None = DEFAULT_EXACT_NODES,
) -> VerificationReport:
    """Rebuild the model of a :func:`repro.decompose` result and audit it.

    *res* needs attributes ``method``, ``k``, ``part``, ``cutsize`` and
    ``decomposition`` (a :class:`~repro.core.api.DecomposeResult`, or any
    duck-typed stand-in such as a reloaded partition file).

    For the hypergraph methods the partition's Eq. 3 cutsize must equal
    the decomposition's measured volume exactly.  The ``graph`` method's
    edge cut is *not* the volume (the paper's point); its decomposition is
    instead audited against the column-net hypergraph, whose cutsize of
    the same row partition measures the true volume of any rowwise
    decomposition.
    """
    method = res.method
    k = int(res.k)
    rep = VerificationReport(subject=f"decompose(method={method}, k={k})")

    model: FineGrainModel | None = None
    if method == "finegrain":
        model = build_finegrain_model(a, consistency=True)
        h = model.hypergraph
        expected: int | None = int(res.cutsize)
        equivalence = True
    elif method == "finegrain-rect":
        model_rect = build_finegrain_model(a, consistency=False)
        h = model_rect.hypergraph
        expected = int(res.cutsize)
        equivalence = True
    elif method == "columnnet":
        h = build_columnnet_model(a, consistency=True).hypergraph
        expected = int(res.cutsize)
        equivalence = True
    elif method == "rownet":
        h = build_rownet_model(a, consistency=True).hypergraph
        expected = int(res.cutsize)
        equivalence = True
    elif method == "graph":
        # the 1D column-net hypergraph measures the true volume of *any*
        # row partition; the graph model's edge cut does not
        h = build_columnnet_model(a, consistency=True).hypergraph
        expected = None
        equivalence = True
    else:
        rep.add("method.known", False, f"cannot verify method {method!r}")
        return rep

    check_all(
        h,
        res.part,
        k,
        epsilon=epsilon,
        model=model,
        dec=res.decomposition,
        expected_cutsize=expected,
        cut_equals_volume=equivalence,
        strict_balance=strict_balance,
        exact_gap=exact_gap,
        exact_nodes=exact_nodes,
        report=rep,
    )
    return rep
