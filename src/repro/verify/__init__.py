"""Correctness-and-robustness subsystem: oracles, replay, fault injection.

Three pillars (see ``docs/verification.md``):

* :mod:`repro.verify.oracles` — slow-but-obviously-correct reference
  implementations of the paper's metrics (Eq. 1/2/3), the consistency
  condition, and an independent expand+fold volume; ``check_all()`` and
  ``verify_decompose()`` return structured reports.  Wired into
  ``decompose(..., verify=True)`` / ``REPRO_VERIFY=1`` and the
  ``repro verify`` CLI.
* :mod:`repro.verify.replay` — differential replay of one seed across
  serial/thread/process × shm × tree-parallel, diffing partitions, cuts
  and telemetry and reporting the first divergent stage.
* :mod:`repro.verify.faults` — deterministic fault plans
  (``REPRO_FAULTS``) that crash workers, break shm and delay tasks at
  named sites so the graceful-degradation paths can be asserted.

Exports resolve lazily (PEP 562): the hot production modules import
``repro.verify.faults`` directly, and nothing here may drag the full
``decompose()`` stack (which :mod:`repro.verify.replay` imports) into
those import chains.
"""

from __future__ import annotations

from importlib import import_module

_EXPORTS = {
    # oracles
    "CheckResult": "repro.verify.oracles",
    "VerificationReport": "repro.verify.oracles",
    "VerificationError": "repro.verify.oracles",
    "check_partition": "repro.verify.oracles",
    "check_decomposition": "repro.verify.oracles",
    "check_all": "repro.verify.oracles",
    "verify_decompose": "repro.verify.oracles",
    "oracle_volume": "repro.verify.oracles",
    "oracle_consistency": "repro.verify.oracles",
    "oracle_cutsize_connectivity": "repro.verify.oracles",
    "exact_optimality_gap": "repro.verify.oracles",
    # replay
    "ReplayVariant": "repro.verify.replay",
    "ReplayReport": "repro.verify.replay",
    "replay_decompose": "repro.verify.replay",
    "write_replay_report": "repro.verify.replay",
    "default_variants": "repro.verify.replay",
    # faults
    "FaultPlan": "repro.verify.faults",
    "FaultSpec": "repro.verify.faults",
    "FaultInjected": "repro.verify.faults",
    "inject": "repro.verify.faults",
    "trip": "repro.verify.faults",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.verify' has no attribute {name!r}")
    return getattr(import_module(module), name)


def __dir__():
    return __all__
