"""Kernel-tier microbenchmark: ``python -m repro.bench kernels``.

Times the hot loops that the kernel axis (``python | flat | jit``, see
:mod:`repro.partitioner.kernels`) reimplements, tier against tier on the
*same* synthetic instance with the *same* RNG stream:

1. the FM inner loop proper — an identical scripted move sequence driven
   through each tier's move kernel (bucket removal, lock, critical-net
   gain updates, bucket re-appends), with the shared vectorized pass
   setup (gain initialization, bucket seeding) outside the timer;
2. one full FM refinement pass (setup + selection + moves + rollback)
   per repetition — the end-to-end view, whose ratio is diluted by the
   setup work both tiers share;
3. HCM/HCC matching — one full clustering sweep per repetition.

The instance is built so its large (~200-pin) nets are *critical*
(monochromatic at pass start): that is the regime the flat tier targets,
where the python reference spends its time in per-pin interpreter loops
(the ``T == 0`` / ``F == 1`` bump-all-pins rules) while the flat tier
batches each net's gain updates into a handful of numpy calls.  Pin
count is kept below the ``_VECTOR_MIN_PINS`` heuristic threshold so the
python matching tier exercises its scalar loop, as it would on the
small sub-hypergraphs of deep recursive bisection.

Every tier must produce bit-identical output — the benchmark diffs the
resulting partition/clustering hashes and reports ``bit_identical`` per
tier, so a timing row from a divergent kernel cannot pass silently.  An
unavailable tier (e.g. ``jit`` without numba) is recorded with its
probe reason instead of a timing row; it is *not* timed through the
fallback, which would silently measure a different tier.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform

import numpy as np

from repro._util import Timer
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.kernels import kernel_available, kernel_info
from repro.telemetry import TelemetryRecorder, use_recorder

__all__ = ["run_kernels_bench", "write_kernels_bench"]

#: tiers in report order (reference first)
_TIERS = ("python", "flat", "jit")


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.asarray(arr, dtype=np.int64).tobytes()).hexdigest()


def synth_instance(
    nv: int = 8000,
    net_size: int = 200,
    degree: int = 24,
    n_cross: int = 400,
    seed: int = 0,
):
    """A synthetic instance that keeps large nets *critical*.

    Mimics the fine-grain model of a matrix with dense rows/columns whose
    nonzeros cluster on one side: each side's vertices are covered by
    *degree* random permutations chopped into nets of *net_size* pins, so
    every large net starts monochromatic and the first move into it fires
    the full ``T == 0`` critical-net update over ~*net_size* pins — the
    per-pin loop the flat tier batches into numpy calls.  *n_cross* small
    (2–4 pin) cross-side nets seed a boundary and some positive-gain
    churn.  Unit weights and costs.  Returns ``(h, part0)`` where
    *part0* is the (balanced) side assignment.
    """
    from repro.hypergraph.hypergraph import Hypergraph

    rng = np.random.default_rng(seed)
    half = nv // 2
    nets = []
    for block in (np.arange(half), np.arange(half, nv)):
        for _ in range(degree):
            perm = rng.permutation(block)
            for i in range(0, len(block) - net_size + 1, net_size):
                nets.append(perm[i : i + net_size])
    for _ in range(n_cross):
        nets.append(rng.choice(nv, int(rng.integers(2, 5)), replace=False))
    sizes = np.array([len(n) for n in nets])
    pins = np.concatenate(nets)
    xpins = np.concatenate([[0], np.cumsum(sizes)])
    h = Hypergraph(nv, xpins, pins)
    part0 = np.zeros(nv, dtype=np.int64)
    part0[half:] = 1
    return h, part0


def synth_match_instance(
    n_blocks: int = 150,
    block: int = 40,
    degree: int = 12,
    net_size: int = 30,
    seed: int = 1,
):
    """Community-structured instance for the matching benchmark.

    Nets draw their pins within one *block* of vertices, so each
    vertex's scoring expansion revisits the same ~*block* neighbours
    through many nets — the regime batched scoring targets, where
    candidate grouping collapses the per-pair work while the scalar
    loop still walks (and float-accumulates) every pin.  Kept below
    ``_VECTOR_MIN_PINS`` so the python tier runs its scalar loop, as it
    would on the small sub-hypergraphs of deep recursive bisection.
    """
    from repro.hypergraph.hypergraph import Hypergraph

    rng = np.random.default_rng(seed)
    nv = n_blocks * block
    nets = []
    for b in range(n_blocks):
        base = b * block
        for _ in range(degree):
            perm = rng.permutation(block) + base
            for i in range(0, block - net_size + 1, net_size):
                nets.append(perm[i : i + net_size])
    sizes = np.array([len(n) for n in nets])
    pins = np.concatenate(nets)
    xpins = np.concatenate([[0], np.cumsum(sizes)])
    return Hypergraph(nv, xpins, pins)


def _fm_runner(tier: str):
    """The pass function for *tier*, called directly (no fallback)."""
    if tier == "flat":
        from repro.partitioner.fm_flat import fm_pass_flat

        return fm_pass_flat
    if tier == "jit":
        from repro.partitioner import fm_jit

        fm_jit.warmup()  # compile outside the timed region

        return fm_jit.fm_pass_jit

    from repro.partitioner.refine import _fm_pass

    def run(core, maxw, cfg, rng):
        return _fm_pass(core, maxw, cfg, rng, core.cut())

    return run


def _time_fm(tier, h, part0, maxw, cfg, repeats, seed) -> dict:
    from repro.partitioner.refine import FMCore

    fn = _fm_runner(tier)
    secs = 0.0
    ops = 0
    gains = []
    shas = []
    for rep in range(repeats):
        rng = np.random.default_rng(seed + rep)
        core = FMCore(h, part0)
        rec = TelemetryRecorder()
        with use_recorder(rec):
            with Timer() as t:
                gain, moved = fn(core, maxw, cfg, rng)
        secs += t.elapsed
        totals = rec.counter_totals()
        # ops = applied moves incl. the ones rolled back: the unit of
        # inner-loop work, identical across tiers by bit-identity
        ops += int(totals.get("fm.moves", 0)) + int(totals.get("fm.rollbacks", 0))
        gains.append(int(gain))
        shas.append(_sha(core.part_array()))
    return {
        "seconds": round(secs, 4),
        "passes": repeats,
        "moves_applied": ops,
        "moves_per_sec": round(ops / secs, 1) if secs > 0 else None,
        "gains": gains,
        "part_shas": shas,
    }


def _time_inner(tier, h, part0, vlist, repeats, seed) -> dict:
    """Drive the scripted move sequence *vlist* through *tier*'s move
    kernel; only the moves are timed (setup/seeding happen outside).

    Both drivers replicate exactly what their pass's selection loop does
    per move — remove from bucket, lock, apply — so this measures the
    production inner loop, not a synthetic proxy.  The jit tier exposes
    a whole-pass kernel with no per-move entry point and is covered by
    the ``fm_pass`` benchmark instead.
    """
    from repro.partitioner.refine import FMCore

    secs = 0.0
    shas = []
    moves = 0
    for _rep in range(repeats):
        core = FMCore(h, part0)
        core.compute_all_gains()
        nv = core.nv
        bound = core.max_gain_bound()
        if tier == "flat":
            from repro.partitioner.fm_flat import FlatGainBucket, FlatMoveEngine

            G = np.asarray(core.gain, dtype=np.int64)
            eng = FlatMoveEngine(core, G, boundary_mode=False)
            b0 = FlatGainBucket(nv, bound, gains=G)
            b1 = FlatGainBucket(nv, bound, gains=G)
            eng.buckets = (b0, b1)
            part = eng.part
            idx0 = np.flatnonzero(part == 0)
            idx1 = np.flatnonzero(part == 1)
            b0.bulk_insert(idx0, G[idx0])
            b1.bulk_insert(idx1, G[idx1])
            with Timer() as t:
                for v in vlist:
                    eng.buckets[int(part[v])].remove(v)
                    eng.lock(v)
                    eng.apply_move(v)
            gain_end, part_end = G, eng.part
        else:
            from repro.partitioner.gainbucket import GainBucket

            b0 = GainBucket(nv, bound)
            b1 = GainBucket(nv, bound)
            core.buckets = (b0, b1)
            core.insert_on_touch = False
            gains = np.asarray(core.gain, dtype=np.int64)
            part = core.part_array()
            idx0 = np.flatnonzero(part == 0)
            idx1 = np.flatnonzero(part == 1)
            b0.bulk_insert(idx0, gains[idx0])
            b1.bulk_insert(idx1, gains[idx1])
            with Timer() as t:
                for v in vlist:
                    core.buckets[core.part[v]].remove(v)
                    core.locked[v] = True
                    core.apply_move(v)
            gain_end = np.asarray(core.gain, dtype=np.int64)
            part_end = core.part_array()
        secs += t.elapsed
        moves += len(vlist)
        # hash gains AND partition: the move kernel's full observable state
        shas.append(_sha(gain_end) + _sha(part_end))
    return {
        "seconds": round(secs, 4),
        "moves_applied": moves,
        "moves_per_sec": round(moves / secs, 1) if secs > 0 else None,
        "state_shas": shas,
    }


def _time_matching(tier, h, repeats, seed) -> dict:
    from repro.partitioner.coarsen import match_vertices

    secs = 0.0
    shas = []
    clusters = []
    for rep in range(repeats):
        rng = np.random.default_rng(seed + rep)
        with Timer() as t:
            cmap, nc, _ = match_vertices(h, rng, scheme="hcc", kernel=tier)
        secs += t.elapsed
        shas.append(_sha(cmap))
        clusters.append(int(nc))
    pins = h.num_pins * repeats
    return {
        "seconds": round(secs, 4),
        "sweeps": repeats,
        "pins_scored": pins,
        "pins_per_sec": round(pins / secs, 1) if secs > 0 else None,
        "clusters": clusters,
        "cmap_shas": shas,
    }


def run_kernels_bench(
    nv: int = 8000,
    repeats: int = 3,
    seed: int = 0,
    epsilon: float = 0.03,
    progress=None,
) -> dict:
    """Run the per-tier microbenchmarks and return the result document."""
    hardware = _hardware()
    info = kernel_info()
    h, part0 = synth_instance(nv=nv, seed=seed)
    # matching gets its own sub-_VECTOR_MIN_PINS, community-structured
    # instance so the python tier exercises its scalar loop (the
    # production path at this size) in the regime batched scoring targets
    h_match = synth_match_instance(seed=seed + 1)
    # the inner-loop instance maximizes critical-net work per move:
    # 2000-pin monochromatic nets, so early moves fire full T==0 sweeps
    # and later moves fire T==1 first-pin scans — the two shapes the
    # flat tier batches
    h_inner, part0_inner = synth_instance(
        nv=nv, net_size=2000, degree=24, n_cross=100, seed=seed + 2
    )
    # identical scripted move sequence for every tier
    vrng = np.random.default_rng(seed + 99)
    vlist = [int(x) for x in vrng.permutation(h_inner.num_vertices)[:16]]
    total_w = int(h.vertex_weights.sum())
    half = int(np.ceil(total_w * (1 + epsilon) / 2))
    maxw = (half, half)
    # full (non-boundary) candidate mode and a tight stall window: the
    # pass stops shortly after the heavy first-cut plateau instead of
    # grinding through thousands of cheap no-improvement moves, so the
    # measurement is dominated by critical-net gain-update work
    cfg = PartitionerConfig(
        epsilon=epsilon,
        fm_boundary_threshold=1 << 30,
        fm_stall_frac=0.02,
        fm_stall_min=64,
    )

    out: dict = {
        "bench": "kernels-microbench",
        "seed": seed,
        "repeats": repeats,
        "instance": {
            "fm_inner_loop": {
                "vertices": h_inner.num_vertices,
                "nets": h_inner.num_nets,
                "pins": int(h_inner.num_pins),
                "max_net_size": int(np.diff(h_inner.xpins).max()),
                "scripted_moves": len(vlist),
            },
            "fm": {
                "vertices": h.num_vertices,
                "nets": h.num_nets,
                "pins": int(h.num_pins),
                "max_net_size": int(np.diff(h.xpins).max()),
            },
            "matching": {
                "vertices": h_match.num_vertices,
                "nets": h_match.num_nets,
                "pins": int(h_match.num_pins),
            },
            "note": "synthetic fine-grain-style FM instances (monochromatic "
                    "large nets, every one critical at pass start, plus "
                    "small cross nets) and a community-structured matching "
                    "instance (nets confined to vertex blocks)",
        },
        "hardware": hardware,
        # the hot loops are single-threaded in every tier, so core count
        # never inflates these numbers — recorded for comparability only
        "single_threaded": True,
        "kernels": {
            t: dict(info[t]) for t in _TIERS
        },
        "fm_inner_loop": {},
        "fm_pass": {},
        "matching": {},
    }

    _SHA_KEY = {
        "fm_inner_loop": "state_shas",
        "fm_pass": "part_shas",
        "matching": "cmap_shas",
    }
    for bench_name, timer_fn, args in (
        ("fm_inner_loop", _time_inner, (h_inner, part0_inner, vlist, repeats, seed)),
        ("fm_pass", _time_fm, (h, part0, maxw, cfg, repeats, seed)),
        ("matching", _time_matching, (h_match, repeats, seed)),
    ):
        rows = out[bench_name]
        for tier in _TIERS:
            if bench_name == "fm_inner_loop" and tier == "jit":
                rows[tier] = {
                    "skipped": True,
                    "reason": "jit tier exposes a whole-pass kernel with "
                    "no per-move entry point; see fm_pass",
                }
                continue
            if not kernel_available(tier):
                rows[tier] = {
                    "skipped": True,
                    "reason": info[tier]["reason"],
                }
                continue
            if progress:
                progress(f"{bench_name}: {tier}")
            rows[tier] = timer_fn(tier, *args)
        ref = rows.get("python")
        if not ref or ref.get("skipped"):
            continue
        key = _SHA_KEY[bench_name]
        for tier in _TIERS:
            row = rows[tier]
            if row.get("skipped"):
                continue
            row["bit_identical"] = row[key] == ref[key]
            if tier != "python" and row["seconds"] > 0:
                row["speedup_vs_python"] = round(
                    ref["seconds"] / row["seconds"], 2
                )

    def _speedups(bench_name):
        return [
            row["speedup_vs_python"]
            for row in out[bench_name].values()
            if "speedup_vs_python" in row and row.get("bit_identical")
        ]

    inner = _speedups("fm_inner_loop")
    passes = _speedups("fm_pass")
    out["summary"] = {
        # the headline number: the FM inner loop proper
        "best_fm_speedup": max(inner) if inner else None,
        "best_fm_pass_speedup": max(passes) if passes else None,
        "all_bit_identical": all(
            row.get("bit_identical", True)
            for rows in (out["fm_inner_loop"], out["fm_pass"], out["matching"])
            for row in rows.values()
        ),
    }
    out["notes"] = [
        "fm_inner_loop drives an identical scripted move sequence "
        "through each tier's production move kernel (bucket removal + "
        "lock + critical-net gain updates + bucket re-appends) with the "
        "shared vectorized setup (gain init, bucket seeding) outside "
        "the timer; best_fm_speedup reads from this benchmark.",
        "fm_pass times one full FM refinement pass per repetition "
        "(setup + selection + critical-net gain updates + rollback) via "
        "the tier's pass function called directly — an unavailable tier "
        "is skipped with its probe reason, never timed through the "
        "fallback chain.  Its ratio is bounded by the vectorized setup "
        "work (gain initialization, bucket seeding) both tiers share.",
        "matching times one full HCC clustering sweep per repetition on "
        "a community-structured instance (nets confined to vertex "
        "blocks).  The flat tier routes to the scalar loop with "
        "per-vertex batching of dense scoring expansions — the former "
        "whole-chunk batched path measured 0.94x (its sort-based merge "
        "of duplicate candidate pairs ate the vectorization win) and "
        "is no longer routed, so near-1x-or-better is the expected "
        "reading: the flat matching tier must never lose to the "
        "reference, and the row proves its bit-identity.",
        "speedup_vs_python is only reported for rows whose outputs "
        "hashed bit-identical to the python reference.",
        "all tiers run single-threaded; these numbers do not depend on "
        f"core count (host: {hardware['usable_cores']} usable).",
    ]
    return out


def write_kernels_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
