"""The §4 headline numbers derived from a Table 2 run.

The paper's summary claims (checked against our measurements by
EXPERIMENTS.md and the integration tests):

* 2D fine-grain beats the 1D hypergraph model by ~43% and the graph model
  by ~59% in overall-average total volume;
* average #msgs of the fine-grain model stays well below the ``2(K-1)``
  bound and approaches the graph model's as K grows;
* fine-grain partitioning is ~2.4x the 1D hypergraph time and ~7.3x the
  graph-model time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bench.runner import InstanceResult

__all__ = ["Summary", "summarize_table2"]


@dataclass(frozen=True)
class Summary:
    """Aggregate comparison of the three models over one Table 2 run."""

    #: % reduction of overall-average total volume, 2D vs 1D hypergraph
    improvement_vs_hypergraph1d: float
    #: % reduction of overall-average total volume, 2D vs graph model
    improvement_vs_graph: float
    #: overall-average messages per processor, per model
    avg_msgs: dict[str, float]
    #: fraction of instances where the message bound (K-1 for 1D models,
    #: 2(K-1) for fine-grain) holds — must be 1.0
    msg_bound_ok: float
    #: overall-average runtime ratios vs the graph model
    time_ratio_vs_graph: dict[str, float]
    #: per-instance win rate of the fine-grain model on total volume
    finegrain_win_rate: float

    def report(self) -> str:
        """Multi-line human-readable report, paper claims alongside."""
        lines = [
            "Summary (paper's §4 claims in brackets):",
            f"  2D vs 1D hypergraph volume improvement: "
            f"{self.improvement_vs_hypergraph1d:5.1f}%  [paper: 43%]",
            f"  2D vs graph-model volume improvement:   "
            f"{self.improvement_vs_graph:5.1f}%  [paper: 59%]",
            f"  fine-grain per-instance win rate:       "
            f"{100 * self.finegrain_win_rate:5.1f}%  [paper: wins every instance]",
            f"  message bound satisfied:                "
            f"{100 * self.msg_bound_ok:5.1f}%  [must be 100%]",
        ]
        for model, ratio in self.time_ratio_vs_graph.items():
            tag = {"hypergraph1d": "[paper: ~3.0x]", "finegrain2d": "[paper: ~7.3x]"}.get(model, "")
            lines.append(f"  {model} time vs graph model:    {ratio:5.2f}x  {tag}")
        for model, msgs in self.avg_msgs.items():
            lines.append(f"  avg #msgs ({model}): {msgs:.2f}")
        return "\n".join(lines)


def summarize_table2(results: Sequence[InstanceResult]) -> Summary:
    """Compute the §4 aggregates from per-instance results."""

    def mean_tot(model: str) -> float:
        vals = [r.tot for r in results if r.model == model]
        return float(np.mean(vals)) if vals else float("nan")

    tot_g = mean_tot("graph")
    tot_h = mean_tot("hypergraph1d")
    tot_f = mean_tot("finegrain2d")

    # message bounds
    ok = 0
    n = 0
    for r in results:
        bound = 2 * (r.k - 1) if r.model == "finegrain2d" else (r.k - 1)
        n += 1
        ok += r.avg_msgs <= bound + 1e-9

    # time ratios (paired by matrix and K)
    by = {(r.matrix, r.k, r.model): r for r in results}
    ratios: dict[str, list[float]] = {"hypergraph1d": [], "finegrain2d": []}
    wins = 0
    pairs = 0
    for (matrix, k, model), r in by.items():
        if model != "graph":
            continue
        for other in ("hypergraph1d", "finegrain2d"):
            o = by.get((matrix, k, other))
            if o is not None and r.time > 0:
                ratios[other].append(o.time / r.time)
        f = by.get((matrix, k, "finegrain2d"))
        h = by.get((matrix, k, "hypergraph1d"))
        if f is not None:
            ref = min(x.tot for x in (r, h) if x is not None)
            pairs += 1
            wins += f.tot <= ref + 1e-12

    def pct_impr(base: float, new: float) -> float:
        return 100.0 * (base - new) / base if base > 0 else float("nan")

    return Summary(
        improvement_vs_hypergraph1d=pct_impr(tot_h, tot_f),
        improvement_vs_graph=pct_impr(tot_g, tot_f),
        avg_msgs={
            m: float(np.mean([r.avg_msgs for r in results if r.model == m]))
            for m in ("graph", "hypergraph1d", "finegrain2d")
            if any(r.model == m for r in results)
        },
        msg_bound_ok=ok / n if n else 1.0,
        time_ratio_vs_graph={
            m: float(np.mean(v)) for m, v in ratios.items() if v
        },
        finegrain_win_rate=wins / pairs if pairs else float("nan"),
    )
