"""The paper's published numbers, machine-readable.

Table 2 of the paper (average communication requirements over 50 seeds per
instance on the authors' 133 MHz PowerPC testbed), transcribed verbatim.
Used by the EXPERIMENTS.md writer and the reproduction report to place our
measurements next to the originals, and by tests that check our summary
arithmetic reproduces the paper's own averages.

Volumes are scaled by the number of rows of the matrix ("tot", "max");
"msgs" is the average number of messages per processor; "time" is the
partitioner runtime in seconds for the graph model and the *normalized*
runtime (relative to the graph model) for the two hypergraph models — the
paper prints the hypergraph columns in parentheses.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperRow", "PAPER_TABLE2", "paper_row", "PAPER_OVERALL"]


@dataclass(frozen=True)
class PaperRow:
    """One (matrix, K, model) cell block of the paper's Table 2."""

    matrix: str
    k: int
    model: str  # "graph" | "hypergraph1d" | "finegrain2d"
    tot: float
    max: float
    msgs: float
    time: float  # seconds for graph; normalized (x graph) otherwise


def _rows(matrix, k, g, h, f):
    return [
        PaperRow(matrix, k, "graph", *g),
        PaperRow(matrix, k, "hypergraph1d", *h),
        PaperRow(matrix, k, "finegrain2d", *f),
    ]


#: (tot, max, msgs, time) triples transcribed from the paper's Table 2
PAPER_TABLE2: list[PaperRow] = [
    *_rows("sherman3", 16, (0.31, 0.03, 5.30, 0.53), (0.25, 0.02, 4.46, 1.77), (0.25, 0.02, 8.38, 3.03)),
    *_rows("sherman3", 32, (0.46, 0.02, 6.48, 0.61), (0.37, 0.02, 5.81, 1.79), (0.36, 0.02, 10.07, 3.34)),
    *_rows("sherman3", 64, (0.64, 0.02, 7.42, 0.71), (0.53, 0.01, 6.94, 1.71), (0.50, 0.01, 11.01, 3.39)),
    *_rows("bcspwr10", 16, (0.09, 0.01, 4.21, 0.28), (0.08, 0.01, 4.29, 3.62), (0.07, 0.01, 7.14, 7.28)),
    *_rows("bcspwr10", 32, (0.15, 0.01, 4.79, 0.34), (0.13, 0.01, 4.65, 3.63), (0.12, 0.01, 7.49, 7.25)),
    *_rows("bcspwr10", 64, (0.23, 0.01, 5.20, 0.42), (0.22, 0.01, 4.93, 3.34), (0.19, 0.01, 7.32, 6.86)),
    *_rows("ken-11", 16, (0.93, 0.08, 13.99, 1.77), (0.60, 0.05, 12.91, 2.19), (0.14, 0.02, 10.79, 3.66)),
    *_rows("ken-11", 32, (1.17, 0.06, 26.00, 1.98), (0.74, 0.03, 21.19, 2.39), (0.29, 0.02, 18.85, 4.09)),
    *_rows("ken-11", 64, (1.45, 0.04, 40.48, 2.35), (0.93, 0.02, 32.22, 2.26), (0.48, 0.02, 28.23, 4.20)),
    *_rows("nl", 16, (1.70, 0.15, 14.99, 1.21), (1.06, 0.10, 13.30, 3.09), (0.74, 0.08, 23.87, 7.07)),
    *_rows("nl", 32, (2.25, 0.10, 27.88, 1.43), (1.49, 0.07, 20.39, 3.12), (1.05, 0.07, 35.98, 7.39)),
    *_rows("nl", 64, (3.04, 0.07, 38.35, 1.54), (2.20, 0.05, 26.13, 3.34), (1.38, 0.05, 42.43, 8.03)),
    *_rows("ken-13", 16, (0.94, 0.08, 14.77, 3.84), (0.55, 0.04, 13.87, 2.17), (0.08, 0.01, 9.39, 3.33)),
    *_rows("ken-13", 32, (1.17, 0.05, 29.02, 4.50), (0.63, 0.03, 22.79, 2.18), (0.17, 0.02, 11.22, 3.64)),
    *_rows("ken-13", 64, (1.40, 0.03, 50.81, 4.78), (0.79, 0.02, 35.93, 2.30), (0.39, 0.02, 20.51, 4.33)),
    *_rows("cq9", 16, (1.70, 0.17, 14.88, 2.12), (0.99, 0.12, 12.62, 2.64), (0.50, 0.08, 18.03, 6.81)),
    *_rows("cq9", 32, (2.43, 0.15, 21.96, 2.46), (1.45, 0.08, 17.87, 2.61), (0.79, 0.09, 24.54, 6.96)),
    *_rows("cq9", 64, (3.73, 0.12, 32.27, 2.80), (2.33, 0.06, 22.67, 2.82), (1.22, 0.07, 30.72, 7.31)),
    *_rows("co9", 16, (1.50, 0.16, 14.81, 2.42), (0.94, 0.11, 12.82, 2.72), (0.47, 0.07, 20.00, 6.63)),
    *_rows("co9", 32, (2.07, 0.12, 19.62, 2.84), (1.36, 0.08, 17.55, 2.78), (0.74, 0.07, 26.84, 7.14)),
    *_rows("co9", 64, (3.10, 0.09, 29.99, 3.07), (2.17, 0.06, 21.85, 2.99), (1.09, 0.06, 31.13, 8.01)),
    *_rows("pltexpA4-6", 16, (0.34, 0.03, 10.05, 3.22), (0.30, 0.03, 10.11, 3.81), (0.20, 0.02, 14.78, 8.92)),
    *_rows("pltexpA4-6", 32, (0.55, 0.03, 15.86, 3.84), (0.51, 0.02, 14.73, 4.13), (0.29, 0.01, 20.51, 9.61)),
    *_rows("pltexpA4-6", 64, (0.98, 0.03, 20.48, 4.32), (0.86, 0.02, 17.35, 4.21), (0.51, 0.01, 21.40, 9.73)),
    *_rows("vibrobox", 16, (1.24, 0.11, 12.84, 2.77), (1.06, 0.08, 10.14, 4.56), (0.79, 0.07, 23.27, 10.40)),
    *_rows("vibrobox", 32, (1.73, 0.08, 20.85, 3.25), (1.53, 0.06, 14.77, 4.65), (1.06, 0.06, 31.28, 10.90)),
    *_rows("vibrobox", 64, (2.28, 0.05, 28.85, 3.49), (2.08, 0.05, 19.58, 4.97), (1.43, 0.05, 35.38, 11.88)),
    *_rows("cre-d", 16, (2.82, 0.24, 14.90, 4.18), (2.00, 0.17, 11.78, 2.34), (1.15, 0.12, 26.05, 7.49)),
    *_rows("cre-d", 32, (4.12, 0.19, 28.59, 4.80), (2.90, 0.14, 19.49, 2.44), (1.77, 0.11, 41.37, 8.08)),
    *_rows("cre-d", 64, (5.95, 0.14, 47.36, 5.03), (4.14, 0.10, 29.73, 2.72), (2.55, 0.10, 55.76, 9.05)),
    *_rows("cre-b", 16, (2.62, 0.23, 14.78, 4.41), (2.02, 0.18, 12.13, 2.38), (1.01, 0.11, 25.91, 7.27)),
    *_rows("cre-b", 32, (3.90, 0.18, 28.57, 5.01), (2.88, 0.15, 19.97, 2.42), (1.55, 0.11, 40.33, 7.96)),
    *_rows("cre-b", 64, (5.73, 0.14, 46.42, 5.42), (4.08, 0.12, 29.98, 2.62), (2.26, 0.10, 52.72, 8.66)),
    *_rows("world", 16, (0.59, 0.05, 11.78, 5.76), (0.54, 0.06, 6.09, 3.36), (0.23, 0.05, 16.57, 8.37)),
    *_rows("world", 32, (0.84, 0.04, 18.00, 7.04), (0.76, 0.05, 8.19, 3.34), (0.41, 0.04, 23.14, 9.00)),
    *_rows("world", 64, (1.19, 0.03, 20.58, 8.16), (1.06, 0.04, 11.58, 3.54), (0.62, 0.04, 27.42, 9.54)),
    *_rows("mod2", 16, (0.57, 0.05, 10.95, 5.85), (0.52, 0.06, 5.59, 3.51), (0.24, 0.05, 13.02, 8.92)),
    *_rows("mod2", 32, (0.79, 0.04, 14.59, 7.19), (0.72, 0.04, 7.42, 3.32), (0.41, 0.05, 18.68, 9.20)),
    *_rows("mod2", 64, (1.14, 0.03, 17.84, 7.96), (1.02, 0.04, 10.51, 3.68), (0.62, 0.04, 24.44, 9.33)),
    *_rows("finan512", 16, (0.20, 0.03, 4.35, 7.84), (0.16, 0.03, 3.48, 3.28), (0.07, 0.02, 9.24, 7.03)),
    *_rows("finan512", 32, (0.27, 0.02, 6.39, 9.56), (0.21, 0.02, 4.15, 3.30), (0.10, 0.02, 10.75, 7.04)),
    *_rows("finan512", 64, (0.38, 0.01, 8.80, 11.17), (0.31, 0.01, 5.37, 3.34), (0.20, 0.02, 14.90, 7.13)),
]

#: the paper's own "overall average" row: (tot, max, msgs, time) per model
PAPER_OVERALL: dict[str, tuple[float, float, float, float]] = {
    "graph": (1.63, 0.08, 19.67, 3.86),
    "hypergraph1d": (1.18, 0.06, 14.46, 3.03),
    "finegrain2d": (0.68, 0.05, 22.64, 7.27),
}


def paper_row(matrix: str, k: int, model: str) -> PaperRow:
    """Look up one Table 2 cell block (raises ``KeyError`` if absent)."""
    for row in PAPER_TABLE2:
        if row.matrix == matrix and row.k == k and row.model == model:
            return row
    raise KeyError(f"no paper data for ({matrix!r}, {k}, {model!r})")
