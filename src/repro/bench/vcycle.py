"""End-to-end V-cycle benchmark: ``python -m repro.bench vcycle``.

Where :mod:`repro.bench.kernels` times individual hot loops in isolation,
this benchmark answers the Amdahl question: how much of a *whole*
``decompose()`` call — coarsening (matching + coarse build), initial
bisection, FM refinement up the V-cycle, K-way boundary refinement —
does the kernel axis actually accelerate, per phase and end to end?

Three instances cover the regimes the tier heuristics separate:

* ``finegrain`` — the paper's fine-grain model of a matrix with dense
  rows/columns.  Every fine-grain vertex has degree ≤ 2 (one row net,
  one column net), so FM gain updates touch at most two nets per move
  and matching visits at most two nets per vertex: the work is
  *visit-bound*, not batch-bound, and the honest expectation for the
  flat tier is ~1x (see the notes in the output document).
* ``rownet-dense`` / ``colnet-dense`` — 1D models of a dense random
  matrix, where vertices have large degree and nets are large: the
  regime where the flat tier's batched critical-net updates and
  bucket machinery win end to end.

Per tier the run is repeated with interleaved ordering (tier A, tier B,
tier A, ...) and the minimum total wall time is kept — on a shared
machine the min-of-N of interleaved runs is the noise-robust estimator.
The telemetry phase breakdown (self time per span name) of the min-time
run provides the attribution table.

Every tier must produce a bit-identical partition — the benchmark
hashes each tier's part vector and reports ``bit_identical`` per tier;
the CLI exits 1 on any divergence.  An unavailable tier (``jit``
without numba) is recorded with its probe reason, never timed through
the fallback chain.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform

import numpy as np
import scipy.sparse as sp

from repro._util import Timer
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.kernels import kernel_available, kernel_info
from repro.telemetry import TelemetryRecorder, use_recorder

__all__ = ["run_vcycle_bench", "write_vcycle_bench"]

#: tiers in report order (reference first)
_TIERS = ("python", "flat", "jit")

#: phase names reported in each tier's breakdown table, aggregated from
#: telemetry span self-times (everything else folds into "other")
_PHASES = (
    "coarsen.match",
    "coarsen.build",
    "initial",
    "refine.fm",
    "kway",
)


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.asarray(arr, dtype=np.int64).tobytes()).hexdigest()


def dense_rows_matrix(n: int, n_dense: int, size: int, seed: int = 7):
    """A sparse matrix with *n_dense* dense rows and columns of *size*
    nonzeros each — the structure whose fine-grain model has the large
    row/column nets that make refinement critical-net-bound."""
    rng = np.random.default_rng(seed)
    a = sp.lil_matrix((n, n))
    for i in range(n_dense):
        a[i, rng.choice(n, size, replace=False)] = 1.0
        a[rng.choice(n, size, replace=False), i] = 1.0
    return a.tocsr()


def uniform_dense_matrix(n: int, density: float, seed: int = 11):
    """A uniformly dense random matrix: its 1D (rownet/colnet) models
    have high-degree vertices and large nets — the flat tier's regime."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, format="csr", rng=rng)
    a.data[:] = 1.0
    return a


def _instances(quick: bool):
    """``(name, matrix, method)`` triples; quick mode shrinks everything
    so CI can smoke the full code path in seconds."""
    if quick:
        fg = dense_rows_matrix(600, 15, 220, seed=7)
        dense = uniform_dense_matrix(500, 0.12, seed=11)
    else:
        fg = dense_rows_matrix(2500, 50, 1000, seed=7)
        dense = uniform_dense_matrix(1200, 0.15, seed=11)
    return (
        ("finegrain", fg, "finegrain"),
        ("rownet-dense", dense, "rownet"),
        ("colnet-dense", dense, "columnnet"),
    )


def _run_once(a, method: str, k: int, tier: str, seed: int, cfg) -> dict:
    """One full decompose() under a fresh recorder; returns wall time,
    partition hash, cutsize, phase self-times and arena counters."""
    from repro.core.api import decompose

    rec = TelemetryRecorder()
    with use_recorder(rec):
        with Timer() as t:
            res = decompose(a, k, method=method, seed=seed, kernel=tier,
                            config=cfg)
    durs = rec.durations_by_name(self_time=True)
    phases = {name: round(durs.pop(name, 0.0), 4) for name in _PHASES}
    phases["other"] = round(sum(durs.values()), 4)
    totals = rec.counter_totals()
    return {
        "seconds": t.elapsed,
        "cutsize": int(res.cutsize),
        "part_sha": _sha(res.part),
        "phases": phases,
        "arena": {
            "allocs": int(totals.get("arena.allocs", 0)),
            "reuses": int(totals.get("arena.reuses", 0)),
            "bytes": int(totals.get("arena.bytes", 0)),
        },
    }


def run_vcycle_bench(
    k: int = 4,
    repeats: int = 3,
    seed: int = 3,
    quick: bool = False,
    progress=None,
) -> dict:
    """Run the end-to-end per-tier benchmark and return the document."""
    hardware = _hardware()
    info = kernel_info()
    if quick:
        repeats = 1
    # kway_refine on so the K-way boundary sweep phase is exercised too
    cfg = PartitionerConfig(kway_refine=True)

    out: dict = {
        "bench": "vcycle-e2e",
        "k": k,
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "hardware": hardware,
        # every tier runs single-threaded (n_starts=1, n_workers=1):
        # core count never inflates these numbers
        "single_threaded": True,
        "kernels": {t: dict(info[t]) for t in _TIERS},
        "instances": {},
    }

    for name, a, method in _instances(quick):
        row: dict = {
            "matrix": {
                "shape": list(a.shape),
                "nnz": int(a.nnz),
            },
            "method": method,
            "tiers": {},
        }
        out["instances"][name] = row
        runnable = []
        for tier in _TIERS:
            if tier == "jit" and not kernel_available("jit"):
                row["tiers"][tier] = {
                    "skipped": True,
                    "reason": info["jit"]["reason"],
                }
                continue
            if not kernel_available(tier):
                row["tiers"][tier] = {
                    "skipped": True,
                    "reason": info[tier]["reason"],
                }
                continue
            runnable.append(tier)
        # interleave repetitions across tiers so shared-machine load
        # shifts hit every tier equally; keep each tier's fastest run
        best: dict[str, dict] = {}
        for rep in range(repeats):
            for tier in runnable:
                if progress:
                    progress(f"{name}: {tier} (rep {rep + 1}/{repeats})")
                r = _run_once(a, method, k, tier, seed, cfg)
                if tier not in best or r["seconds"] < best[tier]["seconds"]:
                    best[tier] = r
        ref = best.get("python")
        for tier in runnable:
            r = dict(best[tier])
            r["seconds"] = round(r["seconds"], 4)
            if ref is not None:
                r["bit_identical"] = r["part_sha"] == ref["part_sha"]
                if tier != "python" and r["seconds"] > 0 and r["bit_identical"]:
                    r["speedup_vs_python"] = round(
                        ref["seconds"] / r["seconds"], 2
                    )
            row["tiers"][tier] = r

    speedups = {
        name: row["tiers"].get("flat", {}).get("speedup_vs_python")
        for name, row in out["instances"].items()
    }
    valid = [s for s in speedups.values() if s is not None]
    out["summary"] = {
        "e2e_speedup_by_instance": speedups,
        "best_e2e_speedup": max(valid) if valid else None,
        "finegrain_e2e_speedup": speedups.get("finegrain"),
        "all_bit_identical": all(
            t.get("bit_identical", True)
            for row in out["instances"].values()
            for t in row["tiers"].values()
        ),
    }
    out["notes"] = [
        "end-to-end wall time of decompose() per kernel tier, min over "
        f"{repeats} interleaved repetition(s); the phase table is the "
        "telemetry self-time breakdown of each tier's fastest run.",
        "finegrain near 1x is the honest structural answer, not a "
        "deficiency: every fine-grain vertex has degree <= 2, so FM gain "
        "updates touch at most two nets per move and matching visits at "
        "most two nets per vertex — the work is per-move/per-visit "
        "bound, and no amount of batching amortizes a 2-element batch.  "
        "The >=4x end-to-end ambition is therefore unattainable on "
        "fine-grain instances; the flat tier's job there is to never "
        "lose (the tier race in repro.partitioner.kernels.race_pick "
        "guarantees it converges onto the faster tier per level).",
        "rownet-dense/colnet-dense are where the flat tier pays: "
        "high-degree vertices and large nets make critical-net updates "
        "and matching scoring batch-bound.",
        "speedup_vs_python is only reported for runs whose partition "
        "hashed bit-identical to the python reference.",
        "all tiers run single-threaded (n_starts=1, n_workers=1); these "
        "numbers do not depend on core count "
        f"(host: {hardware['usable_cores']} usable).",
    ]
    return out


def write_vcycle_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
