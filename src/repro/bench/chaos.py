"""Serve-layer chaos benchmark: ``python -m repro.bench chaos``.

Runs a scripted fault schedule against real ``repro serve`` daemons and
writes ``BENCH_chaos.json``.  The schedule covers the four failure modes
the crash-safety work promises to survive:

* **baseline** — seeded load from concurrent resilient clients (the
  availability and latency reference, and the byte-identity goldens are
  computed locally with the engine first);
* **daemon SIGKILL + warm restart** — a request is held in compute by an
  injected ``serve.compute:sleep`` fault, the daemon is SIGKILLed after
  the durable journal records the accept, and a fresh daemon on the same
  state directory replays it; the client rides through the outage on
  reconnect/backoff and must receive the byte-identical result;
* **cache corruption** — a disk-tier entry is deliberately corrupted and
  re-requested on a cold daemon: detected by checksum, recomputed,
  byte-identical;
* **journal-write failure** — ``serve.journal_write:oserror`` makes the
  journal append fail: absorbed and counted, the request still served;
* **worker kill** — a supervised engine worker dies mid-request
  (``worker.heartbeat:crash``) and is respawned; the engine invariant
  ("recovery never moves a bit") must hold through the serving stack.

Every served partition is compared byte-for-byte against the local
golden; ``byte_divergence`` in the result **must be zero**.  Leaked
``/dev/shm`` segments, stranded ``*.tmp`` files in the state directory
and the bench process's fd count delta are recorded machine-readably,
alongside availability, failover latency, recovery time and replay
counts.  The usual hardware-honesty block (``usable_cores``,
``oversubscribed``) applies.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np
import scipy.sparse as sp

__all__ = ["run_chaos_bench", "chaos_checks_ok", "write_chaos_bench"]

#: instance template (small enough for a CI smoke, large enough that a
#: request in compute gives the SIGKILL a window to land in)
_N, _DENSITY, _K = 90, 0.05, 4
#: the seed whose request is held in compute and SIGKILLed
_KILL_SEED = 77_000
#: seeds for the single-fault stages
_JOURNAL_SEED, _WORKER_SEED = 88_000, 99_000
#: daemon base config (mirrors the ``repro serve`` CLI default)
_EPSILON = 0.03


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _percentile(sorted_ms: list, p: float) -> float:
    if not sorted_ms:
        return 0.0
    return sorted_ms[min(len(sorted_ms) - 1, int(p * len(sorted_ms)))]


def _matrix(seed: int) -> sp.csr_matrix:
    return sp.random(_N, _N, density=_DENSITY, format="csr", random_state=seed)


def _fd_count() -> int | None:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def _shm_set() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


class _StateDir:
    """The on-disk identity of one daemon across restarts."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.sock = os.path.join(root, "repro.sock")
        self.cache_dir = os.path.join(root, "cache")
        self.journal = os.path.join(root, "journal.ndjson")
        self.trace = os.path.join(root, "trace.ndjson")

    def tmp_files(self) -> list:
        found = []
        for dirpath, _, names in os.walk(self.root):
            found.extend(
                os.path.join(dirpath, n) for n in names if n.endswith(".tmp")
            )
        return sorted(found)


def _start_daemon(
    state: _StateDir, workers: int, faults: str | None = None
) -> subprocess.Popen:
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
        if faults.startswith("worker.heartbeat"):
            # fast heartbeats so the killed worker is detected in-run
            env.setdefault("REPRO_HEARTBEAT_INTERVAL", "0.05")
            env.setdefault("REPRO_HEARTBEAT_TIMEOUT", "0.5")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--unix", state.sock, "--workers", str(workers),
            "--cache-dir", state.cache_dir, "--journal", state.journal,
            "--trace", state.trace, "--allow-shutdown",
            "--drain-timeout", "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline()
    if "listening" not in ready:
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {ready!r}")
    return proc


def _stop_daemon(proc: subprocess.Popen, state: _StateDir) -> int:
    from repro.serve.client import Client

    try:
        with Client(state.sock, timeout=30.0) as c:
            c.shutdown()
    except Exception:
        proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    try:
        proc.stdout.close()
    except OSError:
        pass
    return proc.returncode


def _wait_ready(state: _StateDir, timeout: float = 30.0) -> float:
    """Poll ``health`` until the daemon reports ``ready``; returns the
    wait in seconds."""
    from repro.serve.client import Client

    t0 = time.monotonic()
    deadline = t0 + timeout
    with Client(state.sock, timeout=10.0, max_retries=60,
                backoff_base=0.02, backoff_cap=0.2) as c:
        while time.monotonic() < deadline:
            try:
                if c.health().get("state") == "ready":
                    return time.monotonic() - t0
            except Exception:
                pass
            time.sleep(0.05)
    raise RuntimeError("daemon never reached state=ready")


def run_chaos_bench(
    n_workers: int = 2,
    n_clients: int = 3,
    n_distinct: int = 6,
    quick: bool = False,
    progress=lambda s: None,
) -> dict:
    """Run the fault schedule; returns the BENCH_chaos result document."""
    from repro.core.api import decompose
    from repro.fingerprint import fingerprint
    from repro.partitioner.config import PartitionerConfig
    from repro.serve.client import Client

    if quick:
        n_distinct = min(n_distinct, 3)
        n_clients = min(n_clients, 2)
    hardware = _hardware()
    root = tempfile.mkdtemp(prefix="repro_chaos_bench_")
    state = _StateDir(root)
    shm_before, fd_before = _shm_set(), _fd_count()

    base = PartitionerConfig(epsilon=_EPSILON)

    def golden(seed: int, n_starts: int = 1, engine_workers: int = 1) -> bytes:
        cfg = base.with_(n_starts=n_starts, n_workers=engine_workers)
        res = decompose(
            _matrix(seed), _K, method="finegrain", config=cfg, seed=seed
        )
        return np.ascontiguousarray(res.part, dtype=np.int64).tobytes()

    def part_bytes(r) -> bytes:
        return np.ascontiguousarray(r.part, dtype=np.int64).tobytes()

    progress(f"computing {n_distinct + 3} local goldens")
    goldens = {seed: golden(seed) for seed in range(n_distinct)}
    goldens[_KILL_SEED] = golden(_KILL_SEED)
    goldens[_JOURNAL_SEED] = golden(_JOURNAL_SEED)
    goldens[_WORKER_SEED] = golden(_WORKER_SEED, n_starts=2, engine_workers=2)

    divergence = 0
    attempts = successes = 0
    errors: list[str] = []
    lock = threading.Lock()
    schedule: list[dict] = []

    def check(seed: int, r, label: str) -> None:
        nonlocal divergence
        if part_bytes(r) != goldens[seed]:
            with lock:
                divergence += 1
                errors.append(f"{label}: seed={seed} diverged from golden")

    # ---- stage 1: baseline load --------------------------------------
    progress(f"baseline: {n_distinct} requests x {n_clients} clients")
    proc = _start_daemon(state, n_workers)
    baseline_lat: list = []

    def load_worker(seeds: list) -> None:
        nonlocal attempts, successes
        with Client(state.sock, client_id=f"load-{threading.get_ident()}",
                    max_retries=5) as c:
            for seed in seeds:
                with lock:
                    attempts += 1
                t0 = time.monotonic()
                try:
                    r = c.decompose(_matrix(seed), k=_K, seed=seed)
                except Exception as exc:
                    with lock:
                        errors.append(f"baseline seed={seed}: {exc}")
                    continue
                ms = (time.monotonic() - t0) * 1e3
                with lock:
                    successes += 1
                    baseline_lat.append(ms)
                check(seed, r, "baseline")

    chunks = [list(range(n_distinct))[i::n_clients] for i in range(n_clients)]
    threads = [
        threading.Thread(target=load_worker, args=(chunk,))
        for chunk in chunks if chunk
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    baseline_wall = time.monotonic() - t0
    baseline_exit = _stop_daemon(proc, state)
    baseline_lat.sort()
    schedule.append({
        "stage": "baseline",
        "requests": n_distinct,
        "wall_s": round(baseline_wall, 3),
        "p50_ms": round(_percentile(baseline_lat, 0.50), 3),
        "p99_ms": round(_percentile(baseline_lat, 0.99), 3),
        "daemon_exit_code": baseline_exit,
    })

    # ---- stage 2: daemon SIGKILL mid-compute + warm restart ----------
    hold = 2.0 if quick else 3.0
    progress(f"sigkill: hold compute {hold}s, kill daemon, warm restart")
    proc = _start_daemon(state, n_workers,
                         faults=f"serve.compute:sleep{hold}@1")
    kill_cfg = base.with_(n_starts=1, n_workers=1)
    kill_fp = fingerprint(
        _matrix(_KILL_SEED), kill_cfg, _KILL_SEED, k=_K, method="finegrain"
    )
    failover_result: dict = {}

    def kill_client() -> None:
        nonlocal attempts, successes
        with lock:
            attempts += 1
        # generous retry budget: this client must ride through the
        # daemon's death and restart transparently
        with Client(state.sock, client_id="kill", timeout=60.0,
                    max_retries=80, backoff_base=0.05,
                    backoff_cap=0.4) as c:
            t0 = time.monotonic()
            try:
                r = c.decompose(_matrix(_KILL_SEED), k=_K, seed=_KILL_SEED)
            except Exception as exc:
                with lock:
                    errors.append(f"sigkill client: {exc}")
                return
            with lock:
                successes += 1
                failover_result["latency_ms"] = (time.monotonic() - t0) * 1e3
                failover_result["reconnects"] = c.reconnects
                failover_result["retries"] = c.retries
            check(_KILL_SEED, r, "sigkill-failover")

    kc = threading.Thread(target=kill_client)
    kc.start()
    # wait until the durable journal holds the accept, then murder
    journal_deadline = time.monotonic() + 10.0
    accepted = False
    while time.monotonic() < journal_deadline:
        try:
            with open(state.journal) as f:
                accepted = kill_fp in f.read()
        except OSError:
            accepted = False
        if accepted:
            break
        time.sleep(0.02)
    time.sleep(0.15)  # let the request enter the held compute span
    t_kill = time.monotonic()
    proc.kill()  # SIGKILL: no drain, no journal tombstone, no cleanup
    proc.wait()
    try:
        proc.stdout.close()
    except OSError:
        pass

    progress("restarting daemon on the same state dir")
    proc = _start_daemon(state, n_workers)
    ready_wait = _wait_ready(state)
    recovery_s = time.monotonic() - t_kill
    kc.join(timeout=120)
    # the replayed result must now be served from cache, byte-identical
    replays = 0
    with Client(state.sock, client_id="verify", max_retries=5) as c:
        attempts += 1
        try:
            r = c.decompose(_matrix(_KILL_SEED), k=_K, seed=_KILL_SEED)
            successes += 1
            check(_KILL_SEED, r, "sigkill-replayed")
            served_from = r.served.get("cache")
            stats = c.stats()
            replays = stats["counters"].get("replays", 0)
        except Exception as exc:
            served_from = None
            errors.append(f"sigkill verify: {exc}")
    sigkill_exit = _stop_daemon(proc, state)
    schedule.append({
        "stage": "daemon_sigkill_restart",
        "journal_accept_observed": accepted,
        "recovery_s": round(recovery_s, 3),
        "ready_wait_s": round(ready_wait, 3),
        "replays": replays,
        "failover_latency_ms": round(
            failover_result.get("latency_ms", 0.0), 3
        ),
        "client_reconnects": failover_result.get("reconnects", 0),
        "client_retries": failover_result.get("retries", 0),
        "replayed_served_from": served_from,
        "daemon_exit_code": sigkill_exit,
    })

    # ---- stage 3: disk cache corruption ------------------------------
    progress("corrupting the disk cache entry, re-requesting cold")
    entry_path = os.path.join(state.cache_dir, f"{kill_fp}.npz")
    corrupted = False
    if os.path.exists(entry_path):
        with open(entry_path, "r+b") as f:
            f.seek(max(0, os.path.getsize(entry_path) // 2))
            f.write(b"\xde\xad\xbe\xef" * 8)
        corrupted = True
    proc = _start_daemon(state, n_workers)  # cold memory tier
    corrupt_detected = 0
    with Client(state.sock, client_id="corrupt", max_retries=5) as c:
        attempts += 1
        try:
            r = c.decompose(_matrix(_KILL_SEED), k=_K, seed=_KILL_SEED)
            successes += 1
            check(_KILL_SEED, r, "cache-corruption")
            corrupt_detected = (
                c.stats()["cache"].get("corrupt_entries", 0)
            )
        except Exception as exc:
            errors.append(f"corruption: {exc}")
    corrupt_exit = _stop_daemon(proc, state)
    schedule.append({
        "stage": "cache_corruption",
        "entry_corrupted": corrupted,
        "corrupt_entries_detected": corrupt_detected,
        "daemon_exit_code": corrupt_exit,
    })

    # ---- stage 4: journal-write failure ------------------------------
    progress("journal-write failure (absorbed, request still served)")
    proc = _start_daemon(state, n_workers,
                         faults="serve.journal_write:oserror@1")
    journal_write_errors = 0
    with Client(state.sock, client_id="journal", max_retries=5) as c:
        attempts += 1
        try:
            r = c.decompose(_matrix(_JOURNAL_SEED), k=_K, seed=_JOURNAL_SEED)
            successes += 1
            check(_JOURNAL_SEED, r, "journal-write-failure")
            jstats = c.stats().get("journal") or {}
            journal_write_errors = jstats.get("write_errors", 0)
        except Exception as exc:
            errors.append(f"journal fault: {exc}")
    journal_exit = _stop_daemon(proc, state)
    schedule.append({
        "stage": "journal_write_failure",
        "journal_write_errors": journal_write_errors,
        "daemon_exit_code": journal_exit,
    })

    # ---- stage 5: engine worker kill ---------------------------------
    progress("worker kill (heartbeat crash, supervised respawn)")
    proc = _start_daemon(state, n_workers,
                         faults="worker.heartbeat:crash@2")
    with Client(state.sock, client_id="worker", timeout=120.0,
                max_retries=5) as c:
        attempts += 1
        try:
            r = c.decompose(
                _matrix(_WORKER_SEED), k=_K, seed=_WORKER_SEED,
                n_starts=2, engine_workers=2,
            )
            successes += 1
            check(_WORKER_SEED, r, "worker-kill")
        except Exception as exc:
            errors.append(f"worker kill: {exc}")
    worker_exit = _stop_daemon(proc, state)
    schedule.append({
        "stage": "worker_kill",
        "daemon_exit_code": worker_exit,
    })

    # ---- leak audit ---------------------------------------------------
    shm_after, fd_after = _shm_set(), _fd_count()
    tmp_leaked = state.tmp_files()
    oversubscribed = hardware["usable_cores"] < n_workers + 1

    doc = {
        "bench": "chaos",
        "hardware": hardware,
        "quick": quick,
        "n_workers": n_workers,
        "n_clients": n_clients,
        "n_distinct": n_distinct,
        "oversubscribed": oversubscribed,
        "availability": round(successes / attempts, 4) if attempts else 0.0,
        "requests_attempted": attempts,
        "requests_succeeded": successes,
        "byte_divergence": divergence,
        "schedule": schedule,
        "state_dir": root,
        "trace_path": state.trace,
        "checks": {
            "byte_divergence_zero": divergence == 0,
            "all_requests_served": successes == attempts,
            "journal_accept_observed": schedule[1]["journal_accept_observed"],
            "replayed_from_cache": schedule[1]["replayed_served_from"]
            not in (None, "computed"),
            "corruption_detected": schedule[2]["corrupt_entries_detected"] > 0
            or not schedule[2]["entry_corrupted"],
            "journal_fault_absorbed": schedule[3]["journal_write_errors"] > 0,
            "daemon_exit_codes": [s["daemon_exit_code"] for s in schedule],
            "shm_leaked": sorted(shm_after - shm_before),
            "tmp_leaked": tmp_leaked,
            "fd_before": fd_before,
            "fd_after": fd_after,
            "errors": errors,
        },
    }
    if oversubscribed:
        doc["oversubscription_note"] = (
            f"only {hardware['usable_cores']} usable cores for "
            f"{n_workers} compute slots plus the event loop; failover "
            "latency includes CPU contention"
        )
    return doc


def chaos_checks_ok(doc: dict) -> bool:
    """The pass/fail gate CI applies to a chaos run."""
    checks = doc["checks"]
    return bool(
        checks["byte_divergence_zero"]
        and checks["all_requests_served"]
        and checks["journal_accept_observed"]
        and checks["replayed_from_cache"]
        and checks["corruption_detected"]
        and checks["journal_fault_absorbed"]
        and all(code == 0 for code in checks["daemon_exit_codes"])
        and not checks["shm_leaked"]
        and not checks["tmp_leaked"]
        and not checks["errors"]
    )


def write_chaos_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
