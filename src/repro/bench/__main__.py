"""Command-line front end: ``python -m repro.bench <command>``.

Commands
--------
table1
    Print the structural statistics of the (synthesized) test matrices next
    to the paper's Table 1 numbers.
table2
    Run the full model comparison and print it in the paper's Table 2
    layout.
summary
    Run table2 and print the §4 headline aggregates.
models2d
    Compare four generations of 2D decomposition (checkerboard, jagged,
    Mondriaan, fine-grain) on each matrix — quantifying the paper's §1
    claim about prior 2D schemes.
experiments
    Run the table2 sweep and write EXPERIMENTS.md with every measurement
    next to the paper's published value (see ``--output``).
multistart
    Benchmark the multi-start engine against the recorded pre-PR
    sequential baseline and write BENCH_multistart.json.
kernels
    Microbenchmark the refinement/matching kernel tiers (python / flat /
    jit) on a synthetic large-net instance — FM inner loop and HCM/HCC
    matching, per-tier ops/sec and speedup with bit-identity hashes —
    and write BENCH_kernels.json.  Exits 1 if any tier diverges from
    the python reference.
vcycle
    End-to-end ``decompose()`` benchmark per kernel tier with a
    telemetry phase breakdown (matching, coarse build, initial, FM,
    K-way) — the Amdahl view the kernels microbench cannot give — and
    write BENCH_vcycle.json.  ``--quick`` shrinks the instances to a CI
    smoke.  Exits 1 if any tier's partition diverges from the python
    reference.
treeparallel
    Benchmark zero-copy shm transport vs pickle and the tree-parallel
    recursion across backends/worker counts (verifying bit-identity);
    write BENCH_treeparallel.json.
verify
    Differential replay: run the same decomposition across every
    execution backend (serial / thread / process, shm on/off, legacy vs
    seed-tree recursion), diff partitions bit for bit within each
    determinism universe, and write a JSON replay report.  Exits 1 on
    any divergence.
serve
    Boot a real ``repro serve`` daemon and drive it with a mixed
    hit/miss/dedup workload from concurrent clients (plus one
    deadline-degraded request and, with ``--faults``, one request that
    must survive an injected worker crash); write BENCH_serve.json.
    Exits 1 when any correctness check fails.
chaos
    Run the serve-layer fault schedule against live daemons — baseline
    load, daemon SIGKILL mid-compute + warm restart (journal replay),
    disk cache corruption, journal-write failure, engine worker kill —
    comparing every served partition byte-for-byte against local
    goldens; write BENCH_chaos.json.  ``--quick`` shrinks the load to a
    CI smoke.  Exits 1 on any byte divergence, failed recovery, or
    leaked shm/tmp resource.
exact
    Certify the optimal bipartition of every model of a tiny-matrix
    corpus with the branch-and-bound solver, then report the multilevel
    heuristic's optimality gap per model and seed (plus B&B nodes and
    time-to-certify); write BENCH_exact.json.  Exits 1 if any heuristic
    key lexicographically beats a certified optimum — impossible unless
    the exact solver is wrong.

Common options: ``--scale`` (matrix size factor, default 0.125 so a laptop
finishes in minutes; 1.0 reproduces the original sizes), ``--ks``,
``--seeds``, ``--matrices``, ``--epsilon``.

The table sweeps (``table2`` / ``summary`` / ``experiments``) accept
``--checkpoint DIR`` to keep one engine checkpoint file per
(matrix, K, model, seed) cell; a killed sweep rerun with ``--resume``
completes at the cell — and the start — where it died (see
``docs/resilience.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.runner import TABLE2_KS, run_table2
from repro.bench.summary import summarize_table2
from repro.bench.tables import format_table1, format_table2
from repro.matrix.collection import (
    collection_names,
    load_collection_matrix,
    paper_table1,
)
from repro.partitioner import PartitionerConfig

__all__ = ["main"]


def _parse(argv):
    p = argparse.ArgumentParser(prog="python -m repro.bench", description=__doc__)
    p.add_argument(
        "command",
        choices=[
            "table1", "table2", "summary", "models2d", "experiments",
            "multistart", "treeparallel", "verify", "serve", "kernels",
            "vcycle", "exact", "chaos",
        ],
    )
    p.add_argument("--quick", action="store_true",
                   help="vcycle/chaos commands: small instances / reduced "
                        "load (CI smoke)")
    p.add_argument("--output", default="EXPERIMENTS.md",
                   help="output path for the experiments command")
    p.add_argument("--export", default=None,
                   help="also write table2 results to this .csv or .tex file")
    p.add_argument("--scale", type=float, default=0.125,
                   help="matrix scale factor (1.0 = paper-size)")
    p.add_argument("--ks", type=int, nargs="+", default=list(TABLE2_KS))
    p.add_argument("--seeds", type=int, default=3,
                   help="partitioner seeds per instance (paper: 50)")
    p.add_argument("--matrices", nargs="+", default=None,
                   help="subset of collection matrices (default: all 14)")
    p.add_argument("--epsilon", type=float, default=0.03)
    p.add_argument("--matrix-seed", type=int, default=0)
    p.add_argument("--starts", type=int, default=4,
                   help="multistart command: engine starts per instance")
    p.add_argument("--workers", type=int, default=4,
                   help="multistart command: process-backend workers")
    p.add_argument("--profile", action="store_true",
                   help="record telemetry and print a per-phase time "
                        "breakdown for every instance")
    p.add_argument("--profile-json", default=None,
                   help="with --profile, also write the per-instance phase "
                        "times and counters to this JSON file")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="table2/summary/experiments: keep one engine "
                        "checkpoint file per (matrix, K, model, seed) cell "
                        "in DIR so a killed sweep can be resumed")
    p.add_argument("--resume", action="store_true",
                   help="with --checkpoint, resume a previously "
                        "interrupted sweep instead of clearing its "
                        "checkpoint files")
    p.add_argument("--clients", type=int, default=4,
                   help="serve command: concurrent load-generator clients")
    p.add_argument("--requests", type=int, default=8,
                   help="serve command: distinct requests per phase")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="serve command: REPRO_FAULTS spec for the daemon "
                        "(e.g. worker.heartbeat:crash@2)")
    return p.parse_args(argv)


def _print_profile(results) -> None:
    """Per-instance phase breakdown recorded by ``--profile``."""
    print()
    print("per-phase self time (mean seconds per seed):")
    for r in results:
        if not r.phase_times:
            continue
        top = sorted(r.phase_times.items(), key=lambda kv: -kv[1])[:6]
        cells = " ".join(f"{name}={secs * 1e3:.1f}ms" for name, secs in top)
        print(f"  {r.matrix:<12} K={r.k:<3} {r.model:<12} {cells}")


def _write_profile_json(results, path: str) -> None:
    import json

    rows = [
        {
            "matrix": r.matrix,
            "k": r.k,
            "model": r.model,
            "n_seeds": r.n_seeds,
            "time": r.time,
            "phases": r.phase_times,
            "counters": r.counters,
        }
        for r in results
    ]
    with open(path, "w") as f:
        json.dump(rows, f, indent=2)
    print(f"wrote {path}")


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _parse(argv if argv is not None else sys.argv[1:])

    if args.command == "multistart":
        from repro.bench.multistart import run_multistart_bench, write_multistart_bench

        doc = run_multistart_bench(
            n_starts=args.starts,
            n_workers=args.workers,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = args.output if args.output != "EXPERIMENTS.md" else "BENCH_multistart.json"
        write_multistart_bench(path, doc)
        print(f"wrote {path}")
        return 0

    if args.command == "kernels":
        from repro.bench.kernels import run_kernels_bench, write_kernels_bench

        doc = run_kernels_bench(
            repeats=args.seeds,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = args.output if args.output != "EXPERIMENTS.md" else "BENCH_kernels.json"
        write_kernels_bench(path, doc)
        print(f"wrote {path}")
        summary = doc["summary"]
        print(
            f"best FM speedup vs python: x{summary['best_fm_speedup']} "
            f"(bit-identical: {summary['all_bit_identical']})"
        )
        return 0 if summary["all_bit_identical"] else 1

    if args.command == "vcycle":
        from repro.bench.vcycle import run_vcycle_bench, write_vcycle_bench

        doc = run_vcycle_bench(
            repeats=args.seeds,
            quick=args.quick,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = args.output if args.output != "EXPERIMENTS.md" else "BENCH_vcycle.json"
        write_vcycle_bench(path, doc)
        print(f"wrote {path}")
        summary = doc["summary"]
        print(
            f"e2e speedup vs python: {summary['e2e_speedup_by_instance']} "
            f"(bit-identical: {summary['all_bit_identical']})"
        )
        return 0 if summary["all_bit_identical"] else 1

    if args.command == "treeparallel":
        from repro.bench.treeparallel import (
            run_treeparallel_bench,
            write_treeparallel_bench,
        )

        doc = run_treeparallel_bench(
            n_starts=args.starts,
            n_workers=args.workers,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = (
            args.output if args.output != "EXPERIMENTS.md"
            else "BENCH_treeparallel.json"
        )
        write_treeparallel_bench(path, doc)
        print(f"wrote {path}")
        return 0

    if args.command == "serve":
        from repro.bench.serve import run_serve_bench, write_serve_bench

        doc = run_serve_bench(
            n_workers=args.workers,
            n_clients=args.clients,
            n_distinct=args.requests,
            faults=args.faults,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = args.output if args.output != "EXPERIMENTS.md" else "BENCH_serve.json"
        write_serve_bench(path, doc)
        print(f"wrote {path}")
        checks = doc["checks"]
        ok = (
            checks["hit_parts_identical"]
            and checks["dedup_parts_identical"]
            and checks["daemon_exit_code"] == 0
            and not checks["shm_leaked"]
            and not checks["errors"]
            and checks["fault_survived"] is not False
        )
        print(
            f"rps={doc['requests_per_sec']:.1f} "
            f"hit_rate={doc['hit_rate']:.2f} "
            f"degraded={checks['deadline_degraded']} checks={'OK' if ok else 'FAILED'}"
        )
        return 0 if ok else 1

    if args.command == "chaos":
        from repro.bench.chaos import (
            chaos_checks_ok,
            run_chaos_bench,
            write_chaos_bench,
        )

        doc = run_chaos_bench(
            n_workers=min(args.workers, 2),
            n_clients=args.clients,
            n_distinct=args.requests,
            quick=args.quick,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = args.output if args.output != "EXPERIMENTS.md" else "BENCH_chaos.json"
        write_chaos_bench(path, doc)
        print(f"wrote {path}")
        ok = chaos_checks_ok(doc)
        checks = doc["checks"]
        print(
            f"availability={doc['availability']:.3f} "
            f"byte_divergence={doc['byte_divergence']} "
            f"recovery_s={doc['schedule'][1]['recovery_s']} "
            f"replays={doc['schedule'][1]['replays']} "
            f"checks={'OK' if ok else 'FAILED'}"
        )
        for err in checks["errors"]:
            print(f"  ERROR: {err}", file=sys.stderr)
        return 0 if ok else 1

    if args.command == "exact":
        from repro.bench.exact import run_exact_bench, write_exact_bench

        doc = run_exact_bench(
            n_seeds=args.seeds,
            progress=lambda s: print(f"  {s}", file=sys.stderr),
        )
        path = args.output if args.output != "EXPERIMENTS.md" else "BENCH_exact.json"
        write_exact_bench(path, doc)
        print(f"wrote {path}")
        summary, checks = doc["summary"], doc["checks"]
        ok = checks["no_impossible_wins"] and checks["all_certified"]
        print(
            f"instances={summary['instances']} "
            f"mean_gap ghg={summary['mean_gap_ghg']} "
            f"exact-initial={summary['mean_gap_exact_initial']} "
            f"optimal_rate ghg={summary['optimal_rate_ghg']} "
            f"exact-initial={summary['optimal_rate_exact_initial']} "
            f"checks={'OK' if ok else 'FAILED'}"
        )
        if checks["impossible_wins"]:
            for line in checks["impossible_wins"]:
                print(f"  IMPOSSIBLE: {line}", file=sys.stderr)
        if checks["unproven"]:
            for label in checks["unproven"]:
                print(f"  UNPROVEN: {label}", file=sys.stderr)
        return 0 if ok else 1

    if args.command == "verify":
        from repro.verify import replay_decompose, write_replay_report

        names = args.matrices or ["sherman3", "bcspwr10"]
        unknown = set(names) - set(collection_names())
        if unknown:
            print(f"unknown matrices: {sorted(unknown)}", file=sys.stderr)
            return 2
        reports = []
        for name in names:
            a = load_collection_matrix(name, scale=args.scale, seed=args.matrix_seed)
            print(f"  replaying {name}", file=sys.stderr)
            rep = replay_decompose(
                a,
                args.ks[0],
                seed=0,
                n_starts=args.starts,
                n_workers=args.workers,
                epsilon=args.epsilon,
                matrix_label=name,
            )
            print(rep.summary())
            reports.append(rep)
        path = (
            args.output if args.output != "EXPERIMENTS.md"
            else "BENCH_verify_replay.json"
        )
        write_replay_report(path, reports)
        print(f"wrote {path}")
        return 0 if all(r.passed for r in reports) else 1

    names = args.matrices or collection_names()
    unknown = set(names) - set(collection_names())
    if unknown:
        print(f"unknown matrices: {sorted(unknown)}", file=sys.stderr)
        return 2
    matrices = {
        n: load_collection_matrix(n, scale=args.scale, seed=args.matrix_seed)
        for n in names
    }

    if args.command == "table1":
        print(f"Table 1 (generated at scale={args.scale} | paper originals)")
        print(format_table1(matrices, paper_table1()))
        return 0

    if args.command == "models2d":
        _run_models2d(matrices, args)
        return 0

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    cfg = PartitionerConfig(epsilon=args.epsilon)
    results = run_table2(
        matrices,
        ks=args.ks,
        n_seeds=args.seeds,
        config=cfg,
        progress=lambda s: print(f"  running {s}", file=sys.stderr),
        profile=args.profile,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
    )
    if args.command == "table2":
        print(
            f"Table 2 (scale={args.scale}, seeds={args.seeds}, "
            f"eps={args.epsilon}; volumes scaled by #rows)"
        )
        print(format_table2(results))
        if args.export:
            from repro.bench.export import results_to_csv, results_to_latex

            text = (
                results_to_latex(results)
                if args.export.endswith(".tex")
                else results_to_csv(results)
            )
            with open(args.export, "w") as f:
                f.write(text)
            print(f"exported {args.export}")
    elif args.command == "experiments":
        import platform

        from repro.bench.experiments import render_experiments_md

        text = render_experiments_md(
            results, matrices, args.scale, args.seeds,
            host_note=f"{platform.machine()} / Python {platform.python_version()}",
        )
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        print(summarize_table2(results).report())
    if args.profile:
        _print_profile(results)
        if args.profile_json:
            _write_profile_json(results, args.profile_json)
    return 0


def _run_models2d(matrices, args) -> None:
    """Checkerboard vs jagged vs fine-grain on each matrix (A5)."""
    from repro.core.api import decompose_2d_finegrain
    from repro.models import (
        decompose_2d_checkerboard,
        decompose_2d_jagged,
        decompose_2d_mondriaan,
    )
    from repro.spmv import communication_stats

    k = args.ks[0]
    print(f"2D decomposition methods at K={k} (scale={args.scale}):")
    print(
        f"{'matrix':<12} | {'checkerboard':^22} | {'jagged':^22} "
        f"| {'mondriaan':^22} | {'fine-grain':^22}"
    )
    print(
        f"{'':<12} | " + " | ".join(f"{'vol':>9} {'#msgs':>6} {'imb%':>5}" for _ in range(4))
    )
    for name, a in matrices.items():
        cells = []
        for make in (
            lambda: decompose_2d_checkerboard(a, k),
            lambda: decompose_2d_jagged(a, k, seed=0),
            lambda: decompose_2d_mondriaan(a, k, seed=0),
            lambda: decompose_2d_finegrain(a, k, seed=0)[0],
        ):
            stats = communication_stats(make())
            cells.append(
                f"{stats.total_volume:>9} {stats.avg_messages:>6.1f} "
                f"{100 * stats.load_imbalance:>5.1f}"
            )
        print(f"{name:<12} | " + " | ".join(cells))


if __name__ == "__main__":
    raise SystemExit(main())
