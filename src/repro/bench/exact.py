"""Optimality-gap benchmark: ``python -m repro.bench exact``.

Runs the branch-and-bound exact bipartitioner of :mod:`repro.exact` to
certification on a corpus of tiny matrices — every hypergraph model per
matrix — then measures how far the multilevel heuristic lands from each
certified optimum, per model and per seed:

* ``gap``: heuristic cut minus certified optimal cut (0 = the heuristic
  found an optimum), with the lexicographic ``(excess, cut)`` key
  alongside so a balance-infeasible heuristic result is never scored as
  a win;
* ``nodes`` / ``certify_time``: B&B nodes expanded and wall-clock
  seconds to certify — the cost of ground truth;
* per-seed rows under both ``initial_method="ghg"`` (the default
  pipeline) and ``initial_method="exact"`` (the certified coarsest-level
  initial), which on instances this small must land exactly on the
  optimum.

The benchmark is also a solver audit: a multilevel key lexicographically
*below* a certified optimum is impossible, so any such row flips
``checks.no_impossible_wins`` and the command exits 1 — a B&B bug, not a
heuristic regression.  Output: ``BENCH_exact.json``.
"""

from __future__ import annotations

import json
import os
import platform
from statistics import mean

import numpy as np
import scipy.sparse as sp

from repro.core.finegrain import build_finegrain_model
from repro.exact import bisection_bounds, exact_bisection
from repro.hypergraph.partition import compute_part_weights, cutsize_connectivity
from repro.models.onedim import build_columnnet_model, build_rownet_model
from repro.partitioner import PartitionerConfig, partition_hypergraph

__all__ = ["run_exact_bench", "write_exact_bench", "corpus_matrices"]

#: balance tolerance of every instance (the pipeline default)
EPSILON = 0.03

#: certification budget per instance; the corpus certifies far below it
CERTIFY_NODES = 5_000_000


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def corpus_matrices() -> dict[str, sp.csr_matrix]:
    """The small-matrix corpus: structured shapes + seeded random fill.

    Kept a touch larger than the test fixtures (``tests/optimal_fixtures``)
    so the B&B node counts are non-trivial, yet small enough that every
    model certifies in well under a minute on one core.
    """
    mats: dict[str, sp.csr_matrix] = {}

    n = 8
    diag = np.ones(n)
    mats["tri8"] = sp.csr_matrix(
        sp.diags([diag[:-1], diag, diag[:-1]], [-1, 0, 1])
    )

    n = 8
    arrow = sp.lil_matrix((n, n))
    arrow[0, :] = 1.0
    arrow[:, 0] = 1.0
    arrow.setdiag(1.0)
    mats["arrow8"] = sp.csr_matrix(arrow)

    block = sp.block_diag((np.ones((4, 4)), np.ones((4, 4)))).tolil()
    block[3, 4] = 1.0
    block[4, 3] = 1.0
    mats["block2x4"] = sp.csr_matrix(block)

    for name, (n, dens, seed) in {
        "rand7": (7, 0.35, 41),
        "rand8": (8, 0.3, 42),
    }.items():
        a = sp.random(n, n, density=dens, format="csr", random_state=seed)
        a.data[:] = 1.0
        mats[name] = sp.csr_matrix(a)

    for a in mats.values():
        a.eliminate_zeros()
        a.sort_indices()
    return mats


def _models_for(a: sp.csr_matrix):
    yield "finegrain", build_finegrain_model(a, consistency=True).hypergraph
    yield "finegrain-rect", build_finegrain_model(a, consistency=False).hypergraph
    yield "columnnet", build_columnnet_model(a, consistency=True).hypergraph
    yield "rownet", build_rownet_model(a, consistency=True).hypergraph
    # the graph method is audited against the column-net hypergraph (the
    # true volume measure of any row partition) — same optimum by
    # construction, kept as its own row so the mapping stays visible
    yield "graph", build_columnnet_model(a, consistency=True).hypergraph


def _key(h, part, maxw) -> tuple[int, int]:
    w = compute_part_weights(h, part, 2)
    excess = int(max(0, int(w[0]) - maxw[0]) + max(0, int(w[1]) - maxw[1]))
    return (excess, int(cutsize_connectivity(h, part)))


def run_exact_bench(
    n_seeds: int = 3,
    progress=lambda s: None,
) -> dict:
    """Run the gap sweep; returns the JSON-ready benchmark document."""
    rows = []
    impossible: list[str] = []
    unproven: list[str] = []
    for mname, a in corpus_matrices().items():
        for model, h in _models_for(a):
            label = f"{mname}:{model}"
            progress(f"certifying {label} (V={h.num_vertices})")
            exact = exact_bisection(h, EPSILON, max_nodes=CERTIFY_NODES)
            if not exact.proven:
                # an uncertified corpus entry would make every gap below
                # meaningless; report it honestly and fail the checks
                unproven.append(label)
                continue
            _, maxw = bisection_bounds(h, EPSILON)
            optimum = (exact.excess, exact.cutsize)
            seeds = []
            for seed in range(n_seeds):
                row = {"seed": seed}
                for method, cfg in (
                    ("ghg", PartitionerConfig(epsilon=EPSILON)),
                    (
                        "exact",
                        PartitionerConfig(
                            epsilon=EPSILON,
                            initial_method="exact",
                            exact_initial_vertices=max(64, h.num_vertices),
                        ),
                    ),
                ):
                    res = partition_hypergraph(h, 2, cfg, seed=seed)
                    key = _key(h, res.part, maxw)
                    if key < optimum:
                        impossible.append(
                            f"{label} seed={seed} initial={method}: "
                            f"{key} < certified {optimum}"
                        )
                    row[method] = {
                        "excess": key[0],
                        "cut": key[1],
                        "gap": key[1] - exact.cutsize,
                        "optimal": key == optimum,
                    }
                seeds.append(row)
            rows.append(
                {
                    "matrix": mname,
                    "model": model,
                    "vertices": h.num_vertices,
                    "nets": h.num_nets,
                    "pins": h.num_pins,
                    "optimal_cut": exact.cutsize,
                    "optimal_excess": exact.excess,
                    "nodes": exact.nodes,
                    "certify_time": round(exact.runtime, 6),
                    "seeds": seeds,
                }
            )

    ghg_gaps = [s["ghg"]["gap"] for r in rows for s in r["seeds"]]
    exact_gaps = [s["exact"]["gap"] for r in rows for s in r["seeds"]]
    doc = {
        "bench": "exact",
        "epsilon": EPSILON,
        "certify_budget_nodes": CERTIFY_NODES,
        "n_seeds": n_seeds,
        "hardware": _hardware(),
        "rows": rows,
        "summary": {
            "instances": len(rows),
            "mean_gap_ghg": round(mean(ghg_gaps), 4) if ghg_gaps else None,
            "mean_gap_exact_initial": (
                round(mean(exact_gaps), 4) if exact_gaps else None
            ),
            "optimal_rate_ghg": (
                round(
                    sum(s["ghg"]["optimal"] for r in rows for s in r["seeds"])
                    / len(ghg_gaps),
                    4,
                )
                if ghg_gaps
                else None
            ),
            "optimal_rate_exact_initial": (
                round(
                    sum(s["exact"]["optimal"] for r in rows for s in r["seeds"])
                    / len(exact_gaps),
                    4,
                )
                if exact_gaps
                else None
            ),
            "max_certify_nodes": max((r["nodes"] for r in rows), default=0),
            "total_certify_time": round(
                sum(r["certify_time"] for r in rows), 6
            ),
        },
        "checks": {
            # a heuristic beating a certified optimum is a solver bug
            "no_impossible_wins": not impossible,
            "impossible_wins": impossible,
            "all_certified": not unproven,
            "unproven": unproven,
        },
    }
    return doc


def write_exact_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
