"""Tree-parallel recursion + shm transport benchmark.

``python -m repro.bench treeparallel`` (or ``repro-bench treeparallel``)
measures, on the fixed engine bench set:

1. **Transport**: the multi-start engine's process backend with zero-copy
   shared-memory transport vs PR-2's pickle transport (same starts, same
   seeds — the delta is pure serialization cost).
2. **Tree parallelism**: one single-start partition with
   ``tree_parallel=True`` across backends (serial/thread/process) and
   worker counts {1, 2, 4}, verifying on the fly that every combination
   produces the **bit-identical** partition (the seed-tree contract) and
   recording every wall clock next to it.

Honesty rules: the document always carries the host's ``usable_cores``
and an ``oversubscribed`` flag; on a 1-core host the parallel rows
measure scheduling overhead, not scaling, and the JSON says so instead
of letting the numbers masquerade as speedups.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform

import numpy as np

from repro._util import Timer
from repro.bench.multistart import BENCH_INSTANCES
from repro.core.finegrain import build_finegrain_model
from repro.partitioner import (
    PartitionerConfig,
    partition_hypergraph,
    partition_multistart,
)

__all__ = ["run_treeparallel_bench", "write_treeparallel_bench"]

#: worker counts of the scaling columns
WORKER_COUNTS = (1, 2, 4)


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _sig(part: np.ndarray) -> str:
    return hashlib.sha256(np.asarray(part, dtype=np.int64).tobytes()).hexdigest()


def run_treeparallel_bench(
    n_starts: int = 4,
    n_workers: int = 4,
    seed: int = 0,
    progress=None,
) -> dict:
    """Run the benchmark and return the result document."""
    from repro.matrix.collection import load_collection_matrix

    hardware = _hardware()
    oversubscribed = hardware["usable_cores"] < n_workers
    out: dict = {
        "bench": "treeparallel+shm",
        "n_starts": n_starts,
        "n_workers": n_workers,
        "seed": seed,
        "hardware": hardware,
        "oversubscribed": oversubscribed,
        "matrices": {},
    }

    for name, scale, k in BENCH_INSTANCES:
        key = f"{name}@{scale:g}-k{k}"
        if progress:
            progress(f"loading {key}")
        a = load_collection_matrix(name, scale=scale)
        h = build_finegrain_model(a, consistency=True).hypergraph

        # -- transport: engine process backend, pickle vs shm ----------
        if progress:
            progress(f"{key}: engine process pickle vs shm transport")
        cfg_pickle = PartitionerConfig(
            n_starts=n_starts, n_workers=n_workers,
            start_backend="process", shm_transport=False,
        )
        with Timer() as t_pickle:
            r_pickle = partition_multistart(h, k, cfg_pickle, seed=seed)
        cfg_shm = cfg_pickle.with_(shm_transport=True)
        with Timer() as t_shm:
            r_shm = partition_multistart(h, k, cfg_shm, seed=seed)

        # -- tree parallelism: backends x worker counts ----------------
        tree_rows = {}
        sigs = set()
        ref_cfg = PartitionerConfig(tree_parallel=True, n_workers=1)
        if progress:
            progress(f"{key}: tree serial reference")
        with Timer() as t_ref:
            ref = partition_hypergraph(h, k, ref_cfg, seed=seed)
        sigs.add(_sig(ref.part))
        tree_rows["serial-w1"] = {
            "seconds": round(t_ref.elapsed, 3), "cut": ref.cutsize,
        }
        for backend in ("thread", "process"):
            for w in WORKER_COUNTS:
                if w == 1:
                    continue  # identical to the serial reference by contract
                if progress:
                    progress(f"{key}: tree {backend} workers={w}")
                cfg = PartitionerConfig(
                    tree_parallel=True, n_workers=w, start_backend=backend,
                )
                with Timer() as t:
                    res = partition_hypergraph(h, k, cfg, seed=seed)
                sigs.add(_sig(res.part))
                tree_rows[f"{backend}-w{w}"] = {
                    "seconds": round(t.elapsed, 3), "cut": res.cutsize,
                }

        # legacy sequential recursion for context (different stream, so
        # the cut may differ; timing shows the seed-tree mode costs ~0)
        with Timer() as t_legacy:
            legacy = partition_hypergraph(h, k, seed=seed)

        row = {
            "k": k,
            "scale": scale,
            "vertices": h.num_vertices,
            "pins": h.num_pins,
            "engine_pickle_seconds": round(t_pickle.elapsed, 3),
            "engine_shm_seconds": round(t_shm.elapsed, 3),
            "shm_speedup_vs_pickle": round(t_pickle.elapsed / t_shm.elapsed, 2),
            "engine_cut_pickle": r_pickle.cutsize,
            "engine_cut_shm": r_shm.cutsize,
            "transport_bit_identical": bool(
                np.array_equal(r_pickle.part, r_shm.part)
            ),
            "legacy_serial_seconds": round(t_legacy.elapsed, 3),
            "legacy_serial_cut": legacy.cutsize,
            "tree": tree_rows,
            "tree_bit_identical": len(sigs) == 1,
            "tree_part_sha256": sorted(sigs)[0] if len(sigs) == 1 else sorted(sigs),
        }
        out["matrices"][key] = row
        if progress:
            progress(
                f"{key}: shm x{row['shm_speedup_vs_pickle']} vs pickle, "
                f"tree bit-identical={row['tree_bit_identical']}"
            )

    rows = out["matrices"].values()
    if rows:
        out["summary"] = {
            "mean_shm_speedup_vs_pickle": round(
                sum(r["shm_speedup_vs_pickle"] for r in rows) / len(rows), 2
            ),
            "all_tree_bit_identical": all(r["tree_bit_identical"] for r in rows),
            "all_transport_bit_identical": all(
                r["transport_bit_identical"] for r in rows
            ),
        }
    out["notes"] = [
        "tree rows are one single start (n_starts=1) of the seed-tree "
        "recursion; identical part sha256 across every backend/worker "
        "combination is the determinism contract, enforced above.",
        "engine_* rows are best-of-%d process-backend runs; the only "
        "difference between pickle and shm rows is the hypergraph "
        "transport." % n_starts,
        (
            f"OVERSUBSCRIBED: {hardware['usable_cores']} usable core(s) < "
            f"{n_workers} workers — parallel rows on this host measure "
            "pool/transport overhead at zero parallel speedup, not "
            "scaling.  Re-run on a multi-core host for scaling numbers."
            if oversubscribed
            else f"parallel rows ran on {hardware['usable_cores']} usable "
            "cores."
        ),
    ]
    return out


def write_treeparallel_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
