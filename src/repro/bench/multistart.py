"""Multi-start engine benchmark: ``python -m repro.bench multistart``.

Compares three ways of getting a best-of-N fine-grain decomposition on the
fixed instance set the pre-PR baseline was recorded on
(``tests/data/prepr_multistart_baseline.json``):

1. the recorded pre-PR wall-clock of N sequential single starts,
2. N sequential single starts on the current code (isolates the kernel
   vectorization speedup),
3. the multi-start engine at ``n_starts=N`` with the serial and the
   process backend (isolates engine overhead and worker scaling).

The result JSON carries a hardware block — worker scaling is a function
of the core count, so the numbers are only comparable on similar hosts —
and the engine's per-start stats so the best-of-N quality is auditable.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict

from repro._util import Timer
from repro.core.api import decompose
from repro.partitioner import PartitionerConfig
from repro.partitioner.config import ExecutionPolicy
from repro.partitioner.kernels import resolve_kernel
from repro.telemetry import TelemetryRecorder, use_recorder

#: recovery activity that would silently pollute a timing row — recorded
#: per engine run so a benchmark that survived retries or worker
#: restarts says so machine-readably instead of passing as clean
_RESILIENCE_COUNTERS = (
    "engine.start_retries",
    "engine.worker_restarts",
    "engine.backend_fallbacks",
    "engine.deadline_hits",
    "engine.degraded_runs",
    "engine.starts_resumed",
)


def _recovery_counters(rec: TelemetryRecorder) -> dict:
    totals = rec.counter_totals()
    return {k: int(totals[k]) for k in _RESILIENCE_COUNTERS if k in totals}

__all__ = ["BENCH_INSTANCES", "run_multistart_bench", "write_multistart_bench"]

#: (collection name, scale, k) — must match the keys of the recorded
#: pre-PR baseline file
BENCH_INSTANCES: tuple[tuple[str, float, int], ...] = (
    ("sherman3", 0.25, 8),
    ("ken-11", 0.125, 16),
    ("finan512", 0.0625, 16),
)

_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__)))),
    "tests", "data", "prepr_multistart_baseline.json",
)


def _load_baseline(path: str | None) -> dict:
    path = path or _BASELINE_PATH
    try:
        with open(path) as f:
            return json.load(f)
    except OSError:
        return {"matrices": {}}


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def run_multistart_bench(
    n_starts: int = 4,
    n_workers: int = 4,
    seed: int = 0,
    baseline_path: str | None = None,
    progress=None,
) -> dict:
    """Run the engine benchmark and return the result document."""
    from repro.matrix.collection import load_collection_matrix

    baseline = _load_baseline(baseline_path)
    hardware = _hardware()
    # honesty: a process-backend timing taken with more workers than
    # usable cores measures oversubscription (pool + transport overhead at
    # zero parallel speedup), not scaling — say so machine-readably
    # instead of letting the row pass as a parallel measurement
    oversubscribed = hardware["usable_cores"] < n_workers
    # the refinement/matching tier every timed run below executes with —
    # timings taken under different tiers are not comparable, so the
    # record says which one was active (REPRO_KERNEL-aware, post-fallback)
    kernel = resolve_kernel(ExecutionPolicy().kernel)
    out: dict = {
        "bench": "multistart-engine",
        "n_starts": n_starts,
        "n_workers": n_workers,
        "seed": seed,
        "kernel": kernel,
        "hardware": hardware,
        "oversubscribed": oversubscribed,
        "baseline_commit": baseline.get("commit"),
        "matrices": {},
    }

    for name, scale, k in BENCH_INSTANCES:
        key = f"{name}@{scale:g}-k{k}"
        if progress:
            progress(f"loading {key}")
        a = load_collection_matrix(name, scale=scale)

        # N sequential single starts on the current code (kernel-only view)
        if progress:
            progress(f"{key}: {n_starts} sequential single starts")
        seq_cuts = []
        with Timer() as t_seq:
            for s in range(n_starts):
                r = decompose(a, k, method="finegrain", seed=seed + s)
                seq_cuts.append(r.cutsize)

        # multi-start engine, serial backend
        if progress:
            progress(f"{key}: engine serial n_starts={n_starts}")
        cfg_serial = PartitionerConfig(n_starts=n_starts, start_backend="serial")
        rec_serial = TelemetryRecorder()
        with use_recorder(rec_serial):
            r_serial = decompose(
                a, k, method="finegrain", config=cfg_serial, seed=seed
            )

        # multi-start engine, process backend with n_workers
        if progress:
            progress(f"{key}: engine process n_workers={n_workers}")
        cfg_proc = PartitionerConfig(
            n_starts=n_starts, n_workers=n_workers, start_backend="process"
        )
        rec_proc = TelemetryRecorder()
        with use_recorder(rec_proc):
            r_proc = decompose(a, k, method="finegrain", config=cfg_proc, seed=seed)
        recovery_serial = _recovery_counters(rec_serial)
        recovery_proc = _recovery_counters(rec_proc)

        base = baseline.get("matrices", {}).get(key, {})
        base_secs = base.get("seconds_4_sequential_starts")
        row = {
            "k": k,
            "scale": scale,
            "prepr_seconds_sequential": base_secs,
            "prepr_cuts": base.get("cuts"),
            "seconds_sequential": round(t_seq.elapsed, 3),
            "sequential_cuts": seq_cuts,
            "engine_serial_seconds": round(r_serial.runtime, 3),
            "engine_serial_cut": r_serial.cutsize,
            "engine_process_seconds": round(r_proc.runtime, 3),
            "engine_process_cut": r_proc.cutsize,
            "process_workers_effective": min(n_workers, hardware["usable_cores"]),
            "process_oversubscribed": oversubscribed,
            "start_stats": [asdict(s) for s in r_serial.start_stats],
            "process_start_stats": [asdict(s) for s in r_proc.start_stats],
            "engine_serial_recovery": recovery_serial,
            "engine_process_recovery": recovery_proc,
            "clean_run": not (recovery_serial or recovery_proc),
        }
        if base_secs:
            row["kernel_speedup"] = round(base_secs / t_seq.elapsed, 2)
            row["speedup_serial_engine"] = round(base_secs / r_serial.runtime, 2)
            row["speedup_process_engine"] = round(base_secs / r_proc.runtime, 2)
        out["matrices"][key] = row
        if progress:
            progress(
                f"{key}: kernel x{row.get('kernel_speedup', '?')}, "
                f"engine serial x{row.get('speedup_serial_engine', '?')}, "
                f"process x{row.get('speedup_process_engine', '?')}"
            )

    speedups = [
        row["speedup_serial_engine"]
        for row in out["matrices"].values()
        if "speedup_serial_engine" in row
    ]
    proc_speedups = [
        row["speedup_process_engine"]
        for row in out["matrices"].values()
        if "speedup_process_engine" in row
    ]
    if speedups:
        out["summary"] = {
            "mean_kernel_speedup": round(
                sum(r["kernel_speedup"] for r in out["matrices"].values())
                / len(speedups), 2,
            ),
            "mean_speedup_serial_engine": round(sum(speedups) / len(speedups), 2),
            "mean_speedup_process_engine": round(
                sum(proc_speedups) / len(proc_speedups), 2
            ),
        }
    out["notes"] = [
        "speedup_* compare against the recorded pre-PR wall-clock of "
        f"{n_starts} sequential single starts (prepr_seconds_sequential).",
        (
            f"OVERSUBSCRIBED: only {hardware['usable_cores']} usable "
            f"core(s) for {n_workers} workers — process-backend rows "
            "measure transport + pool overhead, not parallel scaling; "
            "disregard speedup_process_engine on this host."
            if oversubscribed
            else f"process-backend rows ran {n_workers} workers on "
            f"{hardware['usable_cores']} usable cores."
        ),
        "The serial-engine speedup is pure kernel vectorization; the "
        "process-engine speedup additionally scales with usable cores "
        f"(this host: {hardware['usable_cores']}).  On a host with "
        f">= {n_workers} cores the process backend multiplies the kernel "
        f"speedup by up to {n_workers}x minus pool overhead; the overhead "
        "is the difference between engine_process_seconds and "
        "engine_serial_seconds / min(n_workers, usable_cores) here.",
        "n_starts=1 remains bit-identical to the pre-PR partitioner at a "
        "fixed seed (verified by tests/data/golden_parts.json replay in "
        "the test suite); start 0 of a multi-start run replays that same "
        "stream, so engine cuts are never worse than single-start cuts.",
        "engine_*_recovery record the resilience-runtime counters "
        "(retries, worker restarts, backend fallbacks, ...) observed "
        "during each timed engine run; clean_run=false means a timing "
        "row includes recovery work and should not be compared against "
        "clean rows.",
    ]
    return out


def write_multistart_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
