"""Serving benchmark: ``python -m repro.bench serve``.

Boots a real ``repro serve`` daemon as a subprocess (UNIX socket), drives
it with a mixed workload from concurrent client threads, and writes
``BENCH_serve.json``:

* a **miss phase** — distinct (matrix, seed) requests that all reach the
  engine, from several clients at once (exercises fair admission);
* a **hit phase** — the same requests repeated, answered from the cache
  (each verified byte-identical to its miss-phase partition);
* a **dedup burst** — many clients asking for one *new* fingerprint
  simultaneously (one computation, the rest share it);
* one **deadline-degraded** request (tiny deadline, ``n_starts > 1``) to
  witness the SLO path;
* optionally one request under **fault injection** (``--faults``, e.g.
  ``worker.heartbeat:crash@2``): the daemon runs with ``REPRO_FAULTS``
  set, a mid-load engine worker dies, and the request must still return
  the correct result.

The result carries the same hardware-honesty block as the other
``BENCH_*`` files (``usable_cores``, ``oversubscribed``) plus a
``shared_core_warning`` when the daemon and the load generator are
pinned to a single core — throughput numbers from such a host measure
contention, not the service.  Leak checks (daemon exit code, leftover
``/dev/shm`` segments) are recorded machine-readably.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np
import scipy.sparse as sp

__all__ = ["run_serve_bench", "write_serve_bench"]

#: instance template for load requests (small enough that a smoke run
#: finishes in seconds, big enough that compute >> protocol overhead)
_N, _DENSITY, _K = 90, 0.05, 4


def _hardware() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _percentile(sorted_ms: list, p: float) -> float:
    if not sorted_ms:
        return 0.0
    return sorted_ms[min(len(sorted_ms) - 1, int(p * len(sorted_ms)))]


def _request_matrix(seed: int) -> sp.csr_matrix:
    return sp.random(
        _N, _N, density=_DENSITY, format="csr", random_state=seed
    )


def _start_daemon(sock: str, workers: int, cache_dir: str, trace: str,
                  faults: str | None) -> subprocess.Popen:
    env = dict(os.environ)
    if faults:
        env["REPRO_FAULTS"] = faults
        # fast heartbeats so a killed worker is detected within the run
        env.setdefault("REPRO_HEARTBEAT_INTERVAL", "0.05")
        env.setdefault("REPRO_HEARTBEAT_TIMEOUT", "0.5")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--unix", sock, "--workers", str(workers),
            "--cache-dir", cache_dir, "--trace", trace,
            "--allow-shutdown",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline()
    if "listening" not in ready:
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {ready!r}")
    return proc


def run_serve_bench(
    n_workers: int = 2,
    n_clients: int = 4,
    n_distinct: int = 8,
    faults: str | None = None,
    sock: str | None = None,
    progress=lambda s: None,
) -> dict:
    """Run the full serving benchmark; returns the result document."""
    from repro.serve.client import Client

    tmp = tempfile.mkdtemp(prefix="repro_serve_bench_")
    sock = sock or os.path.join(tmp, "repro.sock")
    cache_dir = os.path.join(tmp, "cache")
    trace_path = os.path.join(tmp, "serve_trace.ndjson")
    shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()

    hardware = _hardware()
    progress(f"starting daemon (workers={n_workers}, faults={faults or 'none'})")
    proc = _start_daemon(sock, n_workers, cache_dir, trace_path, faults)

    lat: dict[str, list] = {"miss": [], "hit": [], "dedup": []}
    parts: dict[int, bytes] = {}
    hit_identical = True
    errors: list[str] = []
    lock = threading.Lock()

    def worker(phase: str, seeds: list) -> None:
        nonlocal hit_identical
        with Client(sock, client_id=f"{phase}-{threading.get_ident()}") as c:
            for seed in seeds:
                t0 = time.monotonic()
                try:
                    r = c.decompose(_request_matrix(seed), k=_K, seed=seed)
                except Exception as exc:  # recorded, not fatal: the
                    with lock:           # bench reports partial failure
                        errors.append(f"{phase} seed={seed}: {exc}")
                    continue
                ms = (time.monotonic() - t0) * 1e3
                with lock:
                    lat[phase].append(ms)
                    blob = r.part.tobytes()
                    if phase == "miss":
                        parts[seed] = blob
                    elif parts.get(seed) != blob:
                        hit_identical = False

    def run_phase(phase: str, seeds: list) -> float:
        chunks = [seeds[i::n_clients] for i in range(n_clients)]
        threads = [
            threading.Thread(target=worker, args=(phase, chunk))
            for chunk in chunks if chunk
        ]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.monotonic() - t0

    seeds = list(range(n_distinct))
    progress(f"miss phase: {n_distinct} distinct requests, {n_clients} clients")
    miss_wall = run_phase("miss", seeds)
    progress("hit phase: same requests again")
    hit_wall = run_phase("hit", seeds)

    # dedup burst: every client asks for the same *new* fingerprint at once
    progress(f"dedup burst: {n_clients} clients, one new request")
    dedup_parts: list = []

    def dedup_worker() -> None:
        with Client(sock, client_id=f"dedup-{threading.get_ident()}") as c:
            t0 = time.monotonic()
            try:
                r = c.decompose(_request_matrix(10_000), k=_K, seed=10_000)
            except Exception as exc:
                with lock:
                    errors.append(f"dedup: {exc}")
                return
            ms = (time.monotonic() - t0) * 1e3
            with lock:
                lat["dedup"].append(ms)
                dedup_parts.append(r.part.tobytes())

    threads = [threading.Thread(target=dedup_worker) for _ in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    dedup_identical = len(set(dedup_parts)) <= 1

    # one deadline-degraded request (SLO witness)
    progress("deadline request (expect degraded)")
    degraded_seen = False
    with Client(sock, client_id="deadline") as c:
        try:
            r = c.decompose(
                _request_matrix(20_000), k=_K, seed=20_000,
                n_starts=4, deadline=0.005,
            )
            degraded_seen = r.degraded
        except Exception as exc:
            errors.append(f"deadline: {exc}")

    # one request that must survive injected faults (worker killed mid-run)
    fault_survived = None
    if faults:
        progress(f"fault request under {faults}")
        with Client(sock, client_id="faulty", timeout=120.0) as c:
            try:
                r = c.decompose(
                    _request_matrix(30_000), k=_K, seed=30_000,
                    n_starts=2, engine_workers=2,
                )
                fault_survived = bool(
                    r.part is not None and len(r.part) and r.cutsize >= 0
                )
            except Exception as exc:
                fault_survived = False
                errors.append(f"faults: {exc}")

    with Client(sock) as c:
        stats = c.stats()
        c.shutdown()
    proc.wait(timeout=30)
    try:
        proc.stdout.close()
    except OSError:
        pass

    shm_after = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
    for phase in lat:
        lat[phase].sort()
    n_requests = sum(len(v) for v in lat.values())
    wall = miss_wall + hit_wall
    oversubscribed = hardware["usable_cores"] < n_workers + 1
    shared_core = hardware["usable_cores"] < 2

    doc = {
        "bench": "serve",
        "hardware": hardware,
        "n_workers": n_workers,
        "n_clients": n_clients,
        "n_distinct": n_distinct,
        "oversubscribed": oversubscribed,
        "shared_core_warning": (
            "daemon and load generator share one usable core; latency and "
            "throughput below measure contention, not the service"
            if shared_core else None
        ),
        "requests_total": n_requests,
        "requests_per_sec": (n_requests / wall) if wall > 0 else 0.0,
        "latency_ms": {
            phase: {
                "count": len(ms),
                "p50": round(_percentile(ms, 0.50), 3),
                "p99": round(_percentile(ms, 0.99), 3),
                "max": round(ms[-1], 3) if ms else 0.0,
            }
            for phase, ms in lat.items()
        },
        "hit_rate": stats.get("hit_rate", 0.0),
        "daemon_counters": stats.get("counters", {}),
        "daemon_latency_ms": stats.get("latency_ms", {}),
        "cache": stats.get("cache", {}),
        "checks": {
            "hit_parts_identical": hit_identical,
            "dedup_parts_identical": dedup_identical,
            "deadline_degraded": degraded_seen,
            "fault_survived": fault_survived,
            "daemon_exit_code": proc.returncode,
            "shm_leaked": sorted(shm_after - shm_before),
            "errors": errors,
        },
        "faults": faults,
        "trace_path": trace_path,
    }
    if oversubscribed:
        doc["oversubscription_note"] = (
            f"only {hardware['usable_cores']} usable cores for "
            f"{n_workers} compute slots plus the event loop; queueing "
            "latency includes CPU contention"
        )
    return doc


def write_serve_bench(path: str, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
