"""Table formatters mirroring the paper's layout."""

from __future__ import annotations

from typing import Sequence

import scipy.sparse as sp

from repro.bench.runner import MODELS, InstanceResult, model_averages
from repro.matrix.stats import MatrixStats, matrix_stats

__all__ = ["format_table1", "format_table2"]

_MODEL_HEADS = {
    "graph": "Standard Graph Model",
    "hypergraph1d": "1D Hypergraph Model",
    "finegrain2d": "2D Fine-Grain HG Model",
}


def format_table1(
    matrices: dict[str, sp.spmatrix],
    paper: Sequence[MatrixStats] | None = None,
) -> str:
    """Table 1: structural properties of the test matrices.

    When the paper's statistics are supplied, each generated matrix is shown
    side by side with its original for an at-a-glance fidelity check.
    """
    lines = []
    hdr = f"{'name':<12} {'rows':>8} {'nnz':>9} {'min':>4} {'max':>5} {'avg':>7}"
    if paper is not None:
        hdr += "   |" + f"{'rows':>8} {'nnz':>9} {'min':>4} {'max':>5} {'avg':>7}  (paper)"
    lines.append(hdr)
    lines.append("-" * len(hdr))
    paper_by_name = {s.name: s for s in paper} if paper else {}
    for name, a in matrices.items():
        s = matrix_stats(a, name)
        row = (
            f"{name:<12} {s.rows:>8} {s.nnz:>9} {s.min_per_rowcol:>4} "
            f"{s.max_per_rowcol:>5} {s.avg_per_rowcol:>7.2f}"
        )
        p = paper_by_name.get(name)
        if p is not None:
            row += (
                f"   |{p.rows:>8} {p.nnz:>9} {p.min_per_rowcol:>4} "
                f"{p.max_per_rowcol:>5} {p.avg_per_rowcol:>7.2f}"
            )
        lines.append(row)
    return "\n".join(lines)


def format_table2(results: Sequence[InstanceResult]) -> str:
    """Table 2: per-instance communication statistics of the three models.

    Columns per model: scaled total volume, scaled max per-processor
    volume, average messages per processor, partitioner time — time shown
    in seconds for the graph model and *(normalized to the graph model)*
    in parentheses for the hypergraph models, exactly as the paper prints
    it.
    """
    models = [m for m in MODELS if any(r.model == m for r in results)]
    matrices: list[str] = []
    for r in results:
        if r.matrix not in matrices:
            matrices.append(r.matrix)
    ks = sorted({r.k for r in results})
    by = {(r.matrix, r.k, r.model): r for r in results}

    lines = []
    head1 = f"{'name':<12} {'K':>3}"
    for m in models:
        head1 += f" | {_MODEL_HEADS.get(m, m):^34}"
    lines.append(head1)
    head2 = f"{'':<12} {'':>3}"
    for _ in models:
        head2 += f" | {'tot':>7} {'max':>6} {'#msgs':>7} {'time':>9}"
    lines.append(head2)
    lines.append("-" * len(head2))

    def row_cells(matrix: str, k: int) -> str:
        base = by.get((matrix, k, "graph"))
        cells = ""
        for m in models:
            r = by.get((matrix, k, m))
            if r is None:
                cells += f" | {'-':>7} {'-':>6} {'-':>7} {'-':>9}"
                continue
            if m == "graph" or base is None or base.time <= 0:
                tcell = f"{r.time:>9.2f}"
            else:
                tcell = f"({r.time / base.time:>6.2f}) "
            cells += f" | {r.tot:>7.2f} {r.max:>6.2f} {r.avg_msgs:>7.2f} {tcell:>9}"
        return cells

    for matrix in matrices:
        for k in ks:
            lines.append(f"{matrix:<12} {k:>3}" + row_cells(matrix, k))
        lines.append("")

    # averages block
    lines.append("Averages")
    avgs = model_averages(results, ks)
    by_avg = {(a.model, a.k): a for a in avgs}
    for k in ks + [0]:
        label = f"avg K={k}" if k else "avg overall"
        row = f"{label:<16}"
        base = by_avg.get(("graph", k))
        for m in models:
            a = by_avg.get((m, k))
            if a is None:
                row += f" | {'-':>7} {'-':>6} {'-':>7} {'-':>9}"
                continue
            if m == "graph" or base is None or base.time <= 0:
                tcell = f"{a.time:>9.2f}"
            else:
                tcell = f"({a.time / base.time:>6.2f}) "
            row += f" | {a.tot:>7.2f} {a.max:>6.2f} {a.avg_msgs:>7.2f} {tcell:>9}"
        lines.append(row)
    return "\n".join(lines)
