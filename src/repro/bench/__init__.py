"""Experiment harness reproducing the paper's evaluation section.

* :mod:`~repro.bench.runner` — decomposition-instance runner with
  multi-seed averaging (the paper averages 50 PaToH/MeTiS runs per
  instance);
* :mod:`~repro.bench.tables` — formatters printing Table 1 and Table 2 in
  the paper's layout;
* :mod:`~repro.bench.summary` — the §4 headline numbers (overall average
  improvements, message bounds, normalized runtimes);
* ``python -m repro.bench`` — command-line front end.
"""

from repro.bench.runner import (
    InstanceResult,
    ModelAverages,
    run_instance,
    run_matrix_instances,
    run_table2,
    MODELS,
)
from repro.bench.tables import format_table1, format_table2
from repro.bench.summary import summarize_table2, Summary
from repro.bench.paper_data import PAPER_OVERALL, PAPER_TABLE2, PaperRow, paper_row
from repro.bench.experiments import render_experiments_md
from repro.bench.export import results_to_csv, results_to_latex

__all__ = [
    "PAPER_OVERALL",
    "PAPER_TABLE2",
    "PaperRow",
    "paper_row",
    "render_experiments_md",
    "results_to_csv",
    "results_to_latex",
    "InstanceResult",
    "ModelAverages",
    "run_instance",
    "run_matrix_instances",
    "run_table2",
    "MODELS",
    "format_table1",
    "format_table2",
    "summarize_table2",
    "Summary",
]
