"""Export Table-2 results as CSV or LaTeX.

The text tables of :mod:`repro.bench.tables` are for terminals; papers and
notebooks want machine-readable or typeset forms.  Both exporters place the
paper's published value next to each measurement when available.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.bench.paper_data import paper_row
from repro.bench.runner import MODELS, InstanceResult

__all__ = ["results_to_csv", "results_to_latex"]


def _paper_or_none(r: InstanceResult):
    try:
        return paper_row(r.matrix, r.k, r.model)
    except KeyError:
        return None


def results_to_csv(results: Sequence[InstanceResult]) -> str:
    """One row per instance with measured and (when known) paper values."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(
        [
            "matrix", "k", "model", "seeds",
            "tot", "max", "avg_msgs", "time_s", "imbalance", "cutsize",
            "paper_tot", "paper_max", "paper_msgs",
        ]
    )
    for r in results:
        p = _paper_or_none(r)
        w.writerow(
            [
                r.matrix, r.k, r.model, r.n_seeds,
                f"{r.tot:.6f}", f"{r.max:.6f}", f"{r.avg_msgs:.4f}",
                f"{r.time:.4f}", f"{r.imbalance:.6f}", f"{r.cutsize:.1f}",
                f"{p.tot:.2f}" if p else "",
                f"{p.max:.2f}" if p else "",
                f"{p.msgs:.2f}" if p else "",
            ]
        )
    return buf.getvalue()


def results_to_latex(results: Sequence[InstanceResult]) -> str:
    """A booktabs-style LaTeX table in the paper's layout (one row per
    matrix and K, model column groups left to right)."""
    models = [m for m in MODELS if any(r.model == m for r in results)]
    by = {(r.matrix, r.k, r.model): r for r in results}
    matrices: list[str] = []
    for r in results:
        if r.matrix not in matrices:
            matrices.append(r.matrix)
    ks = sorted({r.k for r in results})

    heads = {
        "graph": "Graph model",
        "hypergraph1d": "1D hypergraph",
        "finegrain2d": "2D fine-grain",
    }
    cols = "ll" + "rrr" * len(models)
    lines = [
        r"\begin{tabular}{" + cols + "}",
        r"\toprule",
        " & ".join(
            ["matrix", "$K$"]
            + [r"\multicolumn{3}{c}{%s}" % heads.get(m, m) for m in models]
        )
        + r" \\",
        " & ".join(
            ["", ""] + ["tot", "max", r"\#msgs"] * len(models)
        )
        + r" \\",
        r"\midrule",
    ]
    for matrix in matrices:
        for k in ks:
            cells = [matrix.replace("_", r"\_"), str(k)]
            for m in models:
                r = by.get((matrix, k, m))
                if r is None:
                    cells += ["--", "--", "--"]
                else:
                    cells += [f"{r.tot:.2f}", f"{r.max:.2f}", f"{r.avg_msgs:.2f}"]
            lines.append(" & ".join(cells) + r" \\")
    lines += [r"\bottomrule", r"\end{tabular}"]
    return "\n".join(lines) + "\n"
