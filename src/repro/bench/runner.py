"""Decomposition-instance runner for the Table 2 experiment.

A *decomposition instance* is (matrix, K, model).  For each instance the
paper runs the partitioner from 50 random seeds and reports averages of
the *actual* communication statistics of the induced decompositions —
which is what this runner measures via :mod:`repro.spmv`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro._util import Timer
from repro.core.api import decompose
from repro.partitioner import PartitionerConfig
from repro.spmv.simulator import communication_stats
from repro.telemetry import TelemetryRecorder, use_recorder

__all__ = [
    "MODELS",
    "InstanceResult",
    "ModelAverages",
    "run_instance",
    "run_matrix_instances",
    "run_table2",
]

#: model key -> :func:`repro.decompose` method name, in the paper's
#: Table 2 column order
MODELS: dict[str, str] = {
    "graph": "graph",
    "hypergraph1d": "columnnet",
    "finegrain2d": "finegrain",
}

#: the K values of Table 2
TABLE2_KS: tuple[int, ...] = (16, 32, 64)


@dataclass(frozen=True)
class InstanceResult:
    """Averages over seeds for one (matrix, K, model) instance."""

    matrix: str
    k: int
    model: str
    n_seeds: int
    #: scaled total communication volume (words / rows), like Table 2 "tot"
    tot: float
    #: scaled max per-processor volume, like Table 2 "max"
    max: float
    #: average number of messages sent per processor ("avg #msgs")
    avg_msgs: float
    #: partitioner wall-clock seconds ("time"; normalized later)
    time: float
    #: average computational load imbalance of the decompositions
    imbalance: float
    #: average partitioner cutsize (Eq. 3 for the hypergraph models,
    #: edge cut for the graph model)
    cutsize: float
    #: mean self-time seconds per seed, by telemetry span name (only
    #: populated when the instance ran with ``profile=True``)
    phase_times: dict[str, float] | None = field(default=None, compare=False)
    #: telemetry counter totals summed over all seeds (``profile=True``)
    counters: dict[str, int | float] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class ModelAverages:
    """Column-wise averages over matrices (the paper's "averages" block)."""

    model: str
    k: int
    tot: float
    max: float
    avg_msgs: float
    time: float


def run_instance(
    a: sp.spmatrix,
    matrix_name: str,
    k: int,
    model: str,
    n_seeds: int = 3,
    config: PartitionerConfig | None = None,
    base_seed: int = 0,
    profile: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> InstanceResult:
    """Run one decomposition instance averaged over ``n_seeds`` seeds.

    With ``profile=True`` the seeds run under a telemetry recorder and the
    result row carries a per-phase time breakdown (mean seconds per seed)
    plus the aggregated counters.

    With ``checkpoint_dir`` set, every (matrix, K, model, seed) cell keeps
    its own engine checkpoint file there, so a killed sweep can be rerun
    with ``resume=True`` and complete at the cell — and, inside a
    multi-start cell, the start — where it died.  Without ``resume``, a
    stale checkpoint file from an earlier sweep is cleared first.
    """
    if model not in MODELS:
        raise KeyError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    method = MODELS[model]
    m = a.shape[0]
    tots, maxs, msgs, times, imbs, cuts = [], [], [], [], [], []
    rec = TelemetryRecorder() if profile else None

    def _cell_config(s: int) -> PartitionerConfig | None:
        if checkpoint_dir is None:
            return config
        os.makedirs(checkpoint_dir, exist_ok=True)
        path = os.path.join(
            checkpoint_dir,
            f"{matrix_name}_{model}_K{k}_s{base_seed + s}.ndjson",
        )
        if not resume and os.path.exists(path):
            os.remove(path)
        return (config or PartitionerConfig()).with_(checkpoint_path=path)

    def one_seed(s: int) -> None:
        with Timer("bench.seed", seed=base_seed + s) as t:
            r = decompose(
                a, k, method=method, config=_cell_config(s), seed=base_seed + s
            )
        stats = communication_stats(r.decomposition)
        tots.append(stats.total_volume / m)
        maxs.append(stats.max_volume / m)
        msgs.append(stats.avg_messages)
        times.append(t.elapsed)
        imbs.append(stats.load_imbalance)
        cuts.append(r.cutsize)

    if rec is not None:
        with use_recorder(rec):
            for s in range(n_seeds):
                one_seed(s)
    else:
        for s in range(n_seeds):
            one_seed(s)

    phase_times = counters = None
    if rec is not None:
        phase_times = {
            name: secs / max(n_seeds, 1)
            for name, secs in rec.durations_by_name(self_time=True).items()
        }
        counters = rec.counter_totals()
    return InstanceResult(
        matrix=matrix_name,
        k=k,
        model=model,
        n_seeds=n_seeds,
        tot=float(np.mean(tots)),
        max=float(np.mean(maxs)),
        avg_msgs=float(np.mean(msgs)),
        time=float(np.mean(times)),
        imbalance=float(np.mean(imbs)),
        cutsize=float(np.mean(cuts)),
        phase_times=phase_times,
        counters=counters,
    )


def run_matrix_instances(
    a: sp.spmatrix,
    matrix_name: str,
    ks: Sequence[int] = TABLE2_KS,
    models: Sequence[str] = tuple(MODELS),
    n_seeds: int = 3,
    config: PartitionerConfig | None = None,
    base_seed: int = 0,
    progress: Callable[[str], None] | None = None,
    profile: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> list[InstanceResult]:
    """All (K, model) instances of one matrix."""
    out: list[InstanceResult] = []
    for k in ks:
        for model in models:
            if progress:
                progress(f"{matrix_name} K={k} {model}")
            out.append(
                run_instance(
                    a, matrix_name, k, model, n_seeds, config, base_seed,
                    profile=profile, checkpoint_dir=checkpoint_dir,
                    resume=resume,
                )
            )
    return out


def run_table2(
    matrices: dict[str, sp.spmatrix],
    ks: Sequence[int] = TABLE2_KS,
    models: Sequence[str] = tuple(MODELS),
    n_seeds: int = 3,
    config: PartitionerConfig | None = None,
    base_seed: int = 0,
    progress: Callable[[str], None] | None = None,
    profile: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> list[InstanceResult]:
    """The full Table 2 sweep over the given matrices."""
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
    out: list[InstanceResult] = []
    for name, a in matrices.items():
        out.extend(
            run_matrix_instances(
                a, name, ks, models, n_seeds, config, base_seed, progress,
                profile=profile, checkpoint_dir=checkpoint_dir, resume=resume,
            )
        )
    return out


def model_averages(
    results: Sequence[InstanceResult], ks: Sequence[int] = TABLE2_KS
) -> list[ModelAverages]:
    """Per (model, K) averages over matrices, plus overall (k=0) rows."""
    out: list[ModelAverages] = []
    models = sorted({r.model for r in results}, key=list(MODELS).index)
    for model in models:
        for k in list(ks) + [0]:
            sel = [r for r in results if r.model == model and (k == 0 or r.k == k)]
            if not sel:
                continue
            out.append(
                ModelAverages(
                    model=model,
                    k=k,
                    tot=float(np.mean([r.tot for r in sel])),
                    max=float(np.mean([r.max for r in sel])),
                    avg_msgs=float(np.mean([r.avg_msgs for r in sel])),
                    time=float(np.mean([r.time for r in sel])),
                )
            )
    return out
