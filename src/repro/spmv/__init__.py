"""Symbolic distributed sparse matrix-vector multiply.

Simulates the paper's parallel SpMV on K virtual processors in the three
canonical phases:

1. **expand** (pre-communication): the owner of ``x_j`` sends it to every
   processor holding a nonzero in column *j*;
2. **local multiply**: each processor computes its scalar products and
   row-partial sums;
3. **fold** (post-communication): processors holding partials of row *i*
   send them to the owner of ``y_i``, which accumulates the final value.

The simulator counts every transmitted word and message exactly
(:class:`~repro.spmv.stats.CommStats`) and also executes the arithmetic so
the distributed result can be checked against the serial product — the
measurement instrument behind the paper's Table 2.
"""

from repro.spmv.stats import CommStats
from repro.spmv.simulator import SpmvResult, simulate_spmv, communication_stats
from repro.spmv.costmodel import MachineModel, estimate_parallel_time
from repro.spmv.plan import CommPlan, ProcessorPlan, build_comm_plan, execute_plan
from repro.spmv.parallel import parallel_spmv

__all__ = [
    "CommStats",
    "SpmvResult",
    "simulate_spmv",
    "communication_stats",
    "MachineModel",
    "estimate_parallel_time",
    "CommPlan",
    "ProcessorPlan",
    "build_comm_plan",
    "execute_plan",
    "parallel_spmv",
]
