"""Communication statistics of a decomposed SpMV — the columns of Table 2."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CommStats"]


@dataclass(frozen=True)
class CommStats:
    """Exact per-phase communication counts of one parallel SpMV.

    Conventions (documented because the paper leaves them implicit):

    * a *word* is one vector element (an ``x_j`` copy or one partial
      ``y_i``);
    * a *message* is a distinct ordered (sender, receiver) pair within one
      phase with at least one word;
    * "volume handled by a processor" counts both its sends and its
      receives (so the per-processor maxima in Table 2 sit near
      ``2 * total / K`` for well-spread traffic);
    * "#msgs per processor" counts *sent* messages, making the theoretical
      bounds quoted in the paper exact: ``K - 1`` per phase, hence
      ``K - 1`` for 1D models (one phase) and ``2(K - 1)`` for the
      fine-grain model (both phases).
    """

    k: int
    m: int
    #: words sent in the expand phase, per processor
    expand_sent: np.ndarray
    #: words received in the expand phase, per processor
    expand_recv: np.ndarray
    #: expand messages sent, per processor
    expand_msgs: np.ndarray
    #: words sent in the fold phase, per processor
    fold_sent: np.ndarray
    #: words received in the fold phase, per processor
    fold_recv: np.ndarray
    #: fold messages sent, per processor
    fold_msgs: np.ndarray
    #: scalar multiplications per processor
    compute: np.ndarray

    # -- volumes -----------------------------------------------------------
    @property
    def expand_volume(self) -> int:
        """Total words moved during expand."""
        return int(self.expand_sent.sum())

    @property
    def fold_volume(self) -> int:
        """Total words moved during fold."""
        return int(self.fold_sent.sum())

    @property
    def total_volume(self) -> int:
        """Total communication volume in words (expand + fold)."""
        return self.expand_volume + self.fold_volume

    @property
    def per_processor_volume(self) -> np.ndarray:
        """Words handled (sent + received, both phases) per processor."""
        return (
            self.expand_sent + self.expand_recv + self.fold_sent + self.fold_recv
        )

    @property
    def max_volume(self) -> int:
        """Maximum words handled by a single processor."""
        return int(self.per_processor_volume.max(initial=0))

    # -- messages ----------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """Total messages sent (expand + fold)."""
        return int(self.expand_msgs.sum() + self.fold_msgs.sum())

    @property
    def avg_messages(self) -> float:
        """Average number of messages sent by a processor."""
        return self.total_messages / self.k if self.k else 0.0

    @property
    def max_messages(self) -> int:
        """Maximum messages sent by a single processor."""
        return int((self.expand_msgs + self.fold_msgs).max(initial=0))

    # -- scaled (Table 2 presentation) --------------------------------------
    @property
    def scaled_total_volume(self) -> float:
        """Total volume divided by the number of rows (Table 2 scaling)."""
        return self.total_volume / self.m if self.m else 0.0

    @property
    def scaled_max_volume(self) -> float:
        """Max per-processor volume divided by the number of rows."""
        return self.max_volume / self.m if self.m else 0.0

    # -- load --------------------------------------------------------------
    @property
    def load_imbalance(self) -> float:
        """``(W_max - W_avg) / W_avg`` of the scalar-multiplication loads."""
        total = int(self.compute.sum())
        if total == 0:
            return 0.0
        avg = total / self.k
        return float((self.compute.max() - avg) / avg)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"K={self.k} vol={self.total_volume} "
            f"(expand {self.expand_volume} + fold {self.fold_volume}) "
            f"maxvol={self.max_volume} avg#msgs={self.avg_messages:.2f} "
            f"imbalance={100 * self.load_imbalance:.2f}%"
        )
