"""Process-parallel SpMV: actually execute the decomposition.

The simulator counts messages; this module *sends* them.  One OS process
per virtual processor runs the canonical three-phase algorithm against its
compiled :class:`~repro.spmv.plan.ProcessorPlan`, exchanging numpy payloads
through per-rank queues (the moral equivalent of the mpi4py point-to-point
pattern in an environment without MPI):

1. expand — each rank posts its planned x fragments and then receives
   exactly the fragments its plan announces;
2. local multiply over its own nonzeros;
3. fold — partial row sums travel to the row owners, which accumulate and
   return their y slice to the coordinator.

Every rank touches only data its plan grants it, so a planning bug surfaces
as a missing-key failure rather than a silently wrong answer; the test
suite checks the result is exactly ``A @ x``.

This is a demonstration substrate, not a performance play: Python processes
plus queues will not outrun serial scipy at these sizes.  The point is that
the decomposition *runs*, end to end, with real message passing.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod

import numpy as np
import scipy.sparse as sp

from repro.core.decomposition import Decomposition
from repro.spmv.plan import CommPlan, build_comm_plan
from repro.telemetry import get_recorder

__all__ = ["parallel_spmv"]


def _worker(
    rank: int,
    plan_data: dict,
    local: dict,
    inboxes,
    result_queue,
) -> None:
    """One virtual processor (see module docstring).

    Both phases share one inbox, and a fast neighbour's fold message can
    arrive while this rank is still collecting expand messages — so every
    message carries a phase tag, and out-of-phase arrivals are stashed.
    """
    my_inbox = inboxes[rank]
    stash: list[tuple[str, int, list, np.ndarray]] = []

    def recv(phase: str):
        for idx, msg in enumerate(stash):
            if msg[0] == phase:
                return stash.pop(idx)[1:]
        while True:
            msg = my_inbox.get()
            if msg[0] == phase:
                return msg[1:]
            stash.append(msg)

    # phase 1: expand — send owned x entries per plan, then receive
    for dst, cols in plan_data["expand_send"]:
        payload = np.array([local["x_frag"][j] for j in cols])
        inboxes[dst].put(("expand", rank, cols, payload))
    for _ in range(len(plan_data["expand_recv"])):
        src, cols, payload = recv("expand")
        for j, v in zip(cols, payload):
            local["x_frag"][int(j)] = float(v)

    # phase 2: local multiply into per-row partials
    partials: dict[int, float] = {}
    xf = local["x_frag"]
    for i, j, v in zip(local["rows"], local["cols"], local["vals"]):
        partials[int(i)] = partials.get(int(i), 0.0) + float(v) * xf[int(j)]

    # phase 3: fold — ship partials to row owners, then accumulate
    for dst, rows in plan_data["fold_send"]:
        payload = np.array([partials.pop(int(i), 0.0) for i in rows])
        inboxes[dst].put(("fold", rank, rows, payload))
    y_local = {int(i): partials.get(int(i), 0.0) for i in plan_data["y_owned"]}
    for _ in range(len(plan_data["fold_recv"])):
        src, rows, payload = recv("fold")
        for i, v in zip(rows, payload):
            y_local[int(i)] = y_local.get(int(i), 0.0) + float(v)

    result_queue.put((rank, y_local))


def parallel_spmv(
    dec: Decomposition,
    x: np.ndarray,
    plan: CommPlan | None = None,
    timeout: float = 120.0,
) -> np.ndarray:
    """Run ``y = A x`` on ``dec.k`` real processes; returns the global y.

    The decomposition's matrix and ownership maps are shipped to the
    workers once per call — amortize by reusing the plan across calls when
    iterating.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (dec.n,):
        raise ValueError("x has wrong shape")
    rec = get_recorder()
    parallel_span = rec.span("spmv.parallel", k=dec.k)
    with parallel_span as psp:
        if plan is None:
            with rec.span("spmv.parallel.plan"):
                plan = build_comm_plan(dec)
        if rec.enabled:
            # planned traffic (both phases), for cross-checks against the
            # simulator's counters: plans and stats must agree exactly
            for p in plan.processors:
                psp.add("spmv.expand.msgs", len(p.expand_send))
                psp.add(
                    "spmv.expand.words",
                    sum(len(c) for c in p.expand_send.values()),
                )
                psp.add("spmv.fold.msgs", len(p.fold_send))
                psp.add(
                    "spmv.fold.words",
                    sum(len(r) for r in p.fold_send.values()),
                )
        y = _run_workers(dec, x, plan, timeout, rec)
    return y


def _run_workers(
    dec: Decomposition,
    x: np.ndarray,
    plan: CommPlan,
    timeout: float,
    rec,
) -> np.ndarray:
    k = dec.k
    ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
    inboxes = [ctx.Queue() for _ in range(k)]
    result_queue = ctx.Queue()

    procs = []
    for p in plan.processors:
        plan_data = {
            "expand_send": [(d, c.tolist()) for d, c in sorted(p.expand_send.items())],
            "expand_recv": sorted(p.expand_recv),
            "fold_send": [(d, r.tolist()) for d, r in sorted(p.fold_send.items())],
            "fold_recv": sorted(p.fold_recv),
            "y_owned": p.y_owned.tolist(),
        }
        sel = p.local_nnz
        local = {
            "rows": dec.nnz_row[sel].tolist(),
            "cols": dec.nnz_col[sel].tolist(),
            "vals": dec.nnz_val[sel].tolist(),
            "x_frag": {int(j): float(x[j]) for j in np.flatnonzero(dec.x_owner == p.rank)},
        }
        proc = ctx.Process(
            target=_worker,
            args=(p.rank, plan_data, local, inboxes, result_queue),
        )
        proc.start()
        procs.append(proc)

    y = np.zeros(dec.m, dtype=np.float64)
    reported: set[int] = set()
    try:
        with rec.span("spmv.parallel.exec", workers=len(procs)):
            for _ in range(k):
                try:
                    rank, y_local = result_queue.get(timeout=timeout)
                except queue_mod.Empty:
                    # name the culprits instead of surfacing a bare Empty:
                    # a hung collective is a *which rank* question
                    missing = sorted(set(range(k)) - reported)
                    dead = sorted(
                        p.rank for p, proc in zip(plan.processors, procs)
                        if not proc.is_alive() and p.rank in missing
                    )
                    raise TimeoutError(
                        f"parallel SpMV stalled: no result within {timeout}s; "
                        f"missing ranks {missing}"
                        + (f" (ranks {dead} died)" if dead else " (all alive)")
                    ) from None
                reported.add(rank)
                for i, v in y_local.items():
                    y[i] = v
    finally:
        # escalating shutdown: join politely, terminate stragglers, kill
        # anything that survives SIGTERM (e.g. a rank wedged in a queue
        # feeder); leaked children would hold the inbox pipes open forever
        for proc in procs:
            proc.join(timeout=5)
        for proc in procs:
            if proc.is_alive():
                rec.add("spmv.worker_killed")
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive cleanup
                proc.kill()
                proc.join(timeout=5)
        for q in inboxes:
            q.close()
            q.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()
    return y
