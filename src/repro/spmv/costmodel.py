"""A simple alpha-beta machine model for estimated parallel SpMV time.

The paper reports communication *volume* and *message counts* separately
because their relative importance depends on the machine: on a
high-latency network messages dominate, on a high-bandwidth one volume
does.  This module combines the simulator's exact counts under the
standard linear (postal / alpha-beta) model so users can rank
decompositions for a concrete machine — an extension beyond the paper's
tables, useful for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spmv.stats import CommStats

__all__ = ["MachineModel", "estimate_parallel_time"]


@dataclass(frozen=True)
class MachineModel:
    """Linear cost model parameters.

    Defaults are loosely calibrated to a late-1990s MPP of the kind the
    paper targets (per-message latency dominating per-word cost by ~3
    orders of magnitude).
    """

    #: seconds per scalar multiply-add
    t_flop: float = 100e-9
    #: per-message startup latency (seconds)
    alpha: float = 50e-6
    #: per-word transfer time (seconds)
    beta: float = 100e-9

    def __post_init__(self) -> None:
        if min(self.t_flop, self.alpha, self.beta) < 0:
            raise ValueError("machine parameters must be non-negative")


def estimate_parallel_time(stats: CommStats, machine: MachineModel | None = None) -> float:
    """Estimated wall-clock time of one distributed SpMV.

    Each phase is bounded by its busiest processor::

        T = max_p(2 * compute_p) * t_flop
          + alpha * (max_p expand msgs_p + max_p fold msgs_p)
          + beta  * (max_p expand words_p + max_p fold words_p)

    where a processor's per-phase words count sends plus receives (it must
    touch both) and msgs count sends plus receives likewise.
    """
    m = machine or MachineModel()
    compute = 2.0 * float(stats.compute.max(initial=0)) * m.t_flop
    expand_words = (stats.expand_sent + stats.expand_recv).max(initial=0)
    fold_words = (stats.fold_sent + stats.fold_recv).max(initial=0)
    # received message counts per processor: reconstructed from symmetry of
    # totals is impossible, so approximate receives by sends (the counts
    # are equal in aggregate); this keeps the model monotone in both knobs
    expand_msgs = stats.expand_msgs.max(initial=0)
    fold_msgs = stats.fold_msgs.max(initial=0)
    comm = m.alpha * float(expand_msgs + fold_msgs) + m.beta * float(
        expand_words + fold_words
    )
    return compute + comm
