"""The distributed-SpMV simulator.

Fully vectorized: phases are computed from unique (element, processor)
incidence pairs rather than per-message Python loops, so simulating a
million-nonzero decomposition takes milliseconds.  An optional message
*ledger* materializes the individual messages for inspection and for the
example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import INDEX_DTYPE
from repro.core.decomposition import Decomposition
from repro.spmv.stats import CommStats
from repro.telemetry import get_recorder

__all__ = ["SpmvResult", "simulate_spmv", "communication_stats", "Message"]


@dataclass(frozen=True)
class Message:
    """One point-to-point message of a simulated phase."""

    phase: str  # "expand" | "fold"
    src: int
    dst: int
    #: element indices carried (column ids for expand, row ids for fold)
    elements: tuple[int, ...]

    @property
    def words(self) -> int:
        """Message size in words."""
        return len(self.elements)


@dataclass(frozen=True)
class SpmvResult:
    """Everything the simulator observed for one multiply."""

    y: np.ndarray
    stats: CommStats
    messages: tuple[Message, ...] | None


def _phase(
    elem: np.ndarray,
    elem_owner_of_pairs: np.ndarray,
    holder: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared expand/fold accounting.

    ``elem``/``holder``: for every unique (element, processor) incidence,
    the element id and the processor that holds a piece of it.
    ``elem_owner_of_pairs``: the owner processor of each pair's element.
    Returns per-processor (sent, recv, msgs) plus the (src, dst) arrays of
    the individual transfers.
    """
    need = holder != elem_owner_of_pairs
    src = elem_owner_of_pairs[need]
    dst = holder[need]
    sent = np.bincount(src, minlength=k).astype(INDEX_DTYPE)
    recv = np.bincount(dst, minlength=k).astype(INDEX_DTYPE)
    pair_key = src * k + dst
    uniq = np.unique(pair_key)
    msgs = np.bincount((uniq // k), minlength=k).astype(INDEX_DTYPE)
    return sent, recv, msgs, src, dst


def communication_stats(dec: Decomposition) -> CommStats:
    """Exact communication statistics of *dec* (no arithmetic performed).

    When a telemetry recorder is active, the per-phase message and word
    totals are also recorded as counters (``spmv.expand.words`` etc.) on a
    ``spmv.stats`` span, so traces can be cross-checked against the
    returned :class:`CommStats`.
    """
    rec = get_recorder()
    with rec.span("spmv.stats", k=dec.k, nnz=len(dec.nnz_owner)) as sp:
        k, m = dec.k, dec.m

        with rec.span("spmv.stats.expand"):
            # expand: processors holding a nonzero of column j need x_j
            col_pairs = np.unique(dec.nnz_col * k + dec.nnz_owner)
            e_elem = col_pairs // k
            e_holder = col_pairs % k
            e_owner = dec.x_owner[e_elem]
            e_sent, e_recv, e_msgs, _, _ = _phase(e_elem, e_owner, e_holder, k)

        with rec.span("spmv.stats.fold"):
            # fold: processors holding a nonzero of row i produce a partial
            # y_i
            row_pairs = np.unique(dec.nnz_row * k + dec.nnz_owner)
            f_elem = row_pairs // k
            f_holder = row_pairs % k
            f_owner = dec.y_owner[f_elem]
            # fold flows the opposite way round: holders send to the owner,
            # so the "sender" argument of _phase is the holder side
            f_sent, f_recv, f_msgs, _, _ = _phase(f_elem, f_holder, f_owner, k)

        if rec.enabled:
            sp.add("spmv.expand.words", int(e_sent.sum()))
            sp.add("spmv.expand.msgs", int(e_msgs.sum()))
            sp.add("spmv.fold.words", int(f_sent.sum()))
            sp.add("spmv.fold.msgs", int(f_msgs.sum()))

        compute = np.bincount(dec.nnz_owner, minlength=k).astype(INDEX_DTYPE)
    return CommStats(
        k=k,
        m=m,
        expand_sent=e_sent,
        expand_recv=e_recv,
        expand_msgs=e_msgs,
        fold_sent=f_sent,
        fold_recv=f_recv,
        fold_msgs=f_msgs,
        compute=compute,
    )


def simulate_spmv(
    dec: Decomposition,
    x: np.ndarray | None = None,
    collect_messages: bool = False,
    rng: np.random.Generator | None = None,
) -> SpmvResult:
    """Execute one distributed ``y = A x`` and account every message.

    The arithmetic is performed with the same data movement a real
    message-passing implementation would use: local partial products are
    reduced per (row, owner) group, then cross-processor partials are
    summed at the row's owner in ascending processor order (a deterministic
    reduction order, so the result is reproducible bit-for-bit).

    ``x`` defaults to a random vector.  Returns the assembled global ``y``.
    """
    k, m = dec.k, dec.m
    if x is None:
        rng = rng or np.random.default_rng(0)
        x = rng.standard_normal(dec.n)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (dec.n,):
        raise ValueError("x has wrong shape")

    rec = get_recorder()
    with rec.span("spmv.simulate", k=k, nnz=len(dec.nnz_owner)):
        stats = communication_stats(dec)

        with rec.span("spmv.local_multiply"):
            # local multiply: partial_{i,p} = sum of a_ij x_j over nonzeros
            # owned by p in row i -> grouped reduction keyed by (row, owner)
            key = dec.nnz_row * k + dec.nnz_owner
            prod = dec.nnz_val * x[dec.nnz_col]
            order = np.argsort(key, kind="stable")
            key_s = key[order]
            prod_s = prod[order]
            if len(key_s):
                new_group = np.empty(len(key_s), dtype=bool)
                new_group[0] = True
                new_group[1:] = key_s[1:] != key_s[:-1]
                gidx = np.cumsum(new_group) - 1
                partial = np.zeros(int(gidx[-1]) + 1, dtype=np.float64)
                np.add.at(partial, gidx, prod_s)
                group_key = key_s[new_group]
                g_row = group_key // k
                g_proc = group_key % k
            else:
                partial = np.zeros(0, dtype=np.float64)
                g_row = g_proc = np.zeros(0, dtype=INDEX_DTYPE)

        with rec.span("spmv.fold"):
            # fold: sum partials per row; the sort above already orders
            # partials of a row by ascending processor id, which is our
            # documented reduction order at the owner
            y = np.zeros(m, dtype=np.float64)
            np.add.at(y, g_row, partial)

        messages = None
        if collect_messages:
            messages = tuple(_build_ledger(dec, g_row, g_proc, k))
    return SpmvResult(y=y, stats=stats, messages=messages)


def _build_ledger(
    dec: Decomposition, g_row: np.ndarray, g_proc: np.ndarray, k: int
):
    """Materialize individual messages (for examples/inspection)."""
    # expand messages
    col_pairs = np.unique(dec.nnz_col * k + dec.nnz_owner)
    e_elem = col_pairs // k
    e_holder = (col_pairs % k).astype(int)
    e_owner = dec.x_owner[e_elem].astype(int)
    buckets: dict[tuple[int, int], list[int]] = {}
    for j, src, dst in zip(e_elem, e_owner, e_holder):
        if src != dst:
            buckets.setdefault((src, dst), []).append(int(j))
    for (src, dst), elems in sorted(buckets.items()):
        yield Message("expand", src, dst, tuple(elems))
    # fold messages
    buckets = {}
    owners = dec.y_owner[g_row].astype(int)
    for i, src, dst in zip(g_row, g_proc.astype(int), owners):
        if src != dst:
            buckets.setdefault((src, dst), []).append(int(i))
    for (src, dst), elems in sorted(buckets.items()):
        yield Message("fold", src, dst, tuple(elems))
