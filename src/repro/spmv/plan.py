"""Communication-plan compiler: from a decomposition to per-processor
send/receive lists.

A real message-passing SpMV does not rediscover its communication pattern
every iteration — it compiles the decomposition once into per-processor
plans (who sends which x entries where, who folds which partials to whom)
and then replays the plan each multiply.  This module performs that
compilation step, producing exactly the structures an MPI implementation
would allocate (mpi4py-style: one buffer per neighbour, fixed element
lists), plus a plan-driven executor used to cross-check the simulator.

Plan invariants (tested):

* executing the plan reproduces ``A @ x`` exactly;
* the plan's aggregate word/message counts equal
  :func:`repro.spmv.simulator.communication_stats` on the same
  decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import INDEX_DTYPE
from repro.core.decomposition import Decomposition
from repro.spmv.stats import CommStats

__all__ = ["ProcessorPlan", "CommPlan", "build_comm_plan", "execute_plan"]


@dataclass
class ProcessorPlan:
    """Everything processor *rank* needs for one multiply."""

    rank: int
    #: indices into the decomposition's nonzero arrays owned by this rank
    local_nnz: np.ndarray
    #: x entries this rank owns (it is their expand source)
    x_owned: np.ndarray
    #: y entries this rank owns (it is their fold destination)
    y_owned: np.ndarray
    #: column ids whose x value this rank needs for its local multiplies
    x_needed: np.ndarray
    #: expand sends: dst rank -> column ids to transmit
    expand_send: dict[int, np.ndarray] = field(default_factory=dict)
    #: expand receives: src rank -> column ids expected
    expand_recv: dict[int, np.ndarray] = field(default_factory=dict)
    #: fold sends: dst rank -> row ids whose partial sums to transmit
    fold_send: dict[int, np.ndarray] = field(default_factory=dict)
    #: fold receives: src rank -> row ids expected
    fold_recv: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def send_words(self) -> int:
        """Total words this rank transmits per multiply."""
        return sum(len(v) for v in self.expand_send.values()) + sum(
            len(v) for v in self.fold_send.values()
        )

    @property
    def recv_words(self) -> int:
        """Total words this rank receives per multiply."""
        return sum(len(v) for v in self.expand_recv.values()) + sum(
            len(v) for v in self.fold_recv.values()
        )

    @property
    def n_messages(self) -> int:
        """Messages this rank sends per multiply (both phases)."""
        return len(self.expand_send) + len(self.fold_send)


@dataclass(frozen=True)
class CommPlan:
    """Compiled plans for all K processors."""

    k: int
    #: number of rows (y length)
    m: int
    processors: tuple[ProcessorPlan, ...]
    #: number of columns (x length); defaults to m for square matrices
    n: int | None = None

    def __post_init__(self) -> None:
        if self.n is None:
            object.__setattr__(self, "n", self.m)

    def stats(self) -> CommStats:
        """Aggregate the plan back into a :class:`CommStats` (must equal the
        simulator's on the same decomposition)."""
        k = self.k
        es = np.zeros(k, dtype=INDEX_DTYPE)
        er = np.zeros(k, dtype=INDEX_DTYPE)
        em = np.zeros(k, dtype=INDEX_DTYPE)
        fs = np.zeros(k, dtype=INDEX_DTYPE)
        fr = np.zeros(k, dtype=INDEX_DTYPE)
        fm = np.zeros(k, dtype=INDEX_DTYPE)
        comp = np.zeros(k, dtype=INDEX_DTYPE)
        for p in self.processors:
            es[p.rank] = sum(len(v) for v in p.expand_send.values())
            er[p.rank] = sum(len(v) for v in p.expand_recv.values())
            em[p.rank] = len(p.expand_send)
            fs[p.rank] = sum(len(v) for v in p.fold_send.values())
            fr[p.rank] = sum(len(v) for v in p.fold_recv.values())
            fm[p.rank] = len(p.fold_send)
            comp[p.rank] = len(p.local_nnz)
        return CommStats(
            k=k, m=self.m,
            expand_sent=es, expand_recv=er, expand_msgs=em,
            fold_sent=fs, fold_recv=fr, fold_msgs=fm,
            compute=comp,
        )


def _group_pairs(src: np.ndarray, dst: np.ndarray, elem: np.ndarray, k: int):
    """Yield ``(src, dst, sorted element array)`` per distinct (src, dst)."""
    if len(src) == 0:
        return
    key = src * k + dst
    order = np.lexsort((elem, key))
    key_s = key[order]
    elem_s = elem[order]
    boundaries = np.flatnonzero(np.diff(key_s)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(key_s)]])
    for lo, hi in zip(starts, ends):
        kk = int(key_s[lo])
        yield kk // k, kk % k, elem_s[lo:hi]


def build_comm_plan(dec: Decomposition) -> CommPlan:
    """Compile *dec* into per-processor communication plans."""
    k, m = dec.k, dec.m
    plans = [
        ProcessorPlan(
            rank=p,
            local_nnz=np.flatnonzero(dec.nnz_owner == p),
            x_owned=np.flatnonzero(dec.x_owner == p),
            y_owned=np.flatnonzero(dec.y_owner == p),
            x_needed=np.empty(0, dtype=INDEX_DTYPE),
        )
        for p in range(k)
    ]

    # expand: (col, holder) incidences; transfers owner -> holder
    col_pairs = np.unique(dec.nnz_col * k + dec.nnz_owner)
    e_elem = col_pairs // k
    e_holder = col_pairs % k
    for p in range(k):
        plans[p].x_needed = e_elem[e_holder == p]
    e_owner = dec.x_owner[e_elem]
    need = e_holder != e_owner
    for src, dst, cols in _group_pairs(
        e_owner[need], e_holder[need], e_elem[need], k
    ):
        plans[src].expand_send[dst] = cols
        plans[dst].expand_recv[src] = cols

    # fold: (row, holder) incidences; transfers holder -> owner
    row_pairs = np.unique(dec.nnz_row * k + dec.nnz_owner)
    f_elem = row_pairs // k
    f_holder = row_pairs % k
    f_owner = dec.y_owner[f_elem]
    need = f_holder != f_owner
    for src, dst, rows in _group_pairs(
        f_holder[need], f_owner[need], f_elem[need], k
    ):
        plans[src].fold_send[dst] = rows
        plans[dst].fold_recv[src] = rows

    return CommPlan(k=k, m=m, processors=tuple(plans), n=dec.n)


def execute_plan(
    plan: CommPlan, dec: Decomposition, x: np.ndarray
) -> np.ndarray:
    """Run one multiply strictly by the book of the plan.

    Every value moves only through a planned message; reading an x entry a
    processor neither owns nor received raises — which is exactly the
    property that makes this a cross-check of plan completeness rather than
    a second simulator.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (plan.n,):
        raise ValueError("x has wrong shape")
    k = plan.k

    # expand phase: materialize each rank's local x fragment
    local_x: list[dict[int, float]] = [{} for _ in range(k)]
    for p in plan.processors:
        for j in p.x_owned:
            local_x[p.rank][int(j)] = float(x[j])
    for p in plan.processors:
        for dst, cols in p.expand_send.items():
            for j in cols:
                # a send must come from owned data
                local_x[dst][int(j)] = local_x[p.rank][int(j)]

    # local multiply + fold
    y = np.zeros(plan.m, dtype=np.float64)
    partials: list[dict[int, float]] = [{} for _ in range(k)]
    for p in plan.processors:
        frag = local_x[p.rank]
        acc = partials[p.rank]
        for e in p.local_nnz:
            i = int(dec.nnz_row[e])
            j = int(dec.nnz_col[e])
            if j not in frag:
                raise RuntimeError(
                    f"rank {p.rank} reads x[{j}] it neither owns nor received"
                )
            acc[i] = acc.get(i, 0.0) + float(dec.nnz_val[e]) * frag[j]

    for p in plan.processors:
        for dst, rows in p.fold_send.items():
            for i in rows:
                y[i] += partials[p.rank].pop(int(i))
    # owners add their own partials
    for p in plan.processors:
        owned = set(int(i) for i in p.y_owned)
        for i, v in partials[p.rank].items():
            if i not in owned:
                raise RuntimeError(
                    f"rank {p.rank} holds an unplanned partial for y[{i}]"
                )
            y[i] += v
    return y
