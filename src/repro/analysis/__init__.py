"""Decomposition analysis and reporting.

Tools for *understanding* a decomposition rather than scoring it: the K x K
communication matrix, per-processor traffic/compute profiles, and plain-text
reports used by the CLI's ``analyze`` command and the examples.
"""

from repro.analysis.report import (
    DecompositionReport,
    analyze_decomposition,
    communication_matrix,
    render_report,
)

__all__ = [
    "DecompositionReport",
    "analyze_decomposition",
    "communication_matrix",
    "render_report",
]
