"""Per-processor and pairwise analysis of a decomposition."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import INDEX_DTYPE
from repro.core.decomposition import Decomposition
from repro.spmv.plan import build_comm_plan
from repro.spmv.simulator import communication_stats
from repro.spmv.stats import CommStats

__all__ = [
    "communication_matrix",
    "DecompositionReport",
    "analyze_decomposition",
    "render_report",
]


def communication_matrix(dec: Decomposition) -> np.ndarray:
    """``K x K`` matrix of words sent from rank *i* to rank *j* (both
    phases).  Row sums are per-rank send volumes; the diagonal is zero."""
    k = dec.k
    out = np.zeros((k, k), dtype=INDEX_DTYPE)
    plan = build_comm_plan(dec)
    for p in plan.processors:
        for dst, cols in p.expand_send.items():
            out[p.rank, dst] += len(cols)
        for dst, rows in p.fold_send.items():
            out[p.rank, dst] += len(rows)
    return out


@dataclass(frozen=True)
class DecompositionReport:
    """Summary of everything worth knowing about one decomposition."""

    stats: CommStats
    comm_matrix: np.ndarray
    #: number of ordered rank pairs exchanging any words
    active_pairs: int
    #: fraction of all possible ordered pairs that communicate
    pair_density: float
    #: per-rank words sent (both phases)
    send_profile: np.ndarray
    #: per-rank scalar multiplications
    compute_profile: np.ndarray
    #: Gini-style concentration of send traffic (0 = uniform, -> 1 = one
    #: rank sends everything)
    send_concentration: float


def _concentration(values: np.ndarray) -> float:
    """Normalized mean absolute difference (Gini coefficient)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = len(v)
    total = v.sum()
    if n <= 1 or total == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * (index * v).sum() / (n * total)) - (n + 1) / n)


def analyze_decomposition(dec: Decomposition) -> DecompositionReport:
    """Compute the full report for *dec*."""
    stats = communication_stats(dec)
    cm = communication_matrix(dec)
    active = int(np.count_nonzero(cm))
    possible = dec.k * (dec.k - 1)
    return DecompositionReport(
        stats=stats,
        comm_matrix=cm,
        active_pairs=active,
        pair_density=active / possible if possible else 0.0,
        send_profile=cm.sum(axis=1),
        compute_profile=stats.compute.copy(),
        send_concentration=_concentration(cm.sum(axis=1)),
    )


def _bar(value: float, peak: float, width: int = 30) -> str:
    filled = int(round(width * value / peak)) if peak > 0 else 0
    return "#" * filled + "." * (width - filled)


def render_report(report: DecompositionReport, max_matrix: int = 16) -> str:
    """Plain-text rendering: headline stats, per-rank profiles as bars, and
    (for small K) the communication matrix itself."""
    s = report.stats
    lines = [
        s.summary(),
        f"active rank pairs: {report.active_pairs} "
        f"({100 * report.pair_density:.0f}% of possible), "
        f"send concentration (Gini): {report.send_concentration:.2f}",
        "",
        "rank |" + " compute".ljust(32) + "| words sent",
    ]
    peak_c = float(report.compute_profile.max(initial=1))
    peak_s = float(report.send_profile.max(initial=1))
    for r in range(s.k):
        c = float(report.compute_profile[r])
        v = float(report.send_profile[r])
        lines.append(
            f"{r:>4} | {_bar(c, peak_c)} | {_bar(v, peak_s, 20)} {int(v)}"
        )
    if s.k <= max_matrix:
        lines.append("")
        lines.append("communication matrix (words, row = sender):")
        width = max(len(str(int(report.comm_matrix.max(initial=0)))), 3)
        header = "     " + " ".join(f"{j:>{width}}" for j in range(s.k))
        lines.append(header)
        for i in range(s.k):
            row = " ".join(f"{int(x):>{width}}" for x in report.comm_matrix[i])
            lines.append(f"{i:>4} {row}")
    return "\n".join(lines)
