"""Distributed iterative solvers with exact communication accounting.

Every ``A @ v`` goes through :func:`repro.spmv.simulate_spmv` on the given
decomposition; dense vector operations are local thanks to the symmetric
(conformal) x/y distribution, except dot products, which cost one scalar
all-reduce each (``K - 1`` words against a root under the simple linear
reduction the paper's era machines used — tracked separately from the
SpMV traffic).

Implemented from scratch (no ``scipy.sparse.linalg``):

* :func:`conjugate_gradient` — SPD systems;
* :func:`jacobi` — diagonally dominant systems (needs a nonzero diagonal);
* :func:`power_iteration` — dominant eigenpair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import Decomposition
from repro.spmv.simulator import communication_stats, simulate_spmv

__all__ = ["SolveResult", "conjugate_gradient", "jacobi", "power_iteration"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a distributed iterative solve."""

    #: the solution (or eigenvector) assembled globally
    x: np.ndarray
    #: iterations actually performed
    iterations: int
    #: whether the tolerance was reached within the iteration budget
    converged: bool
    #: final residual norm (or eigen-residual for power iteration)
    residual: float
    #: SpMV words moved per iteration (constant: the decomposition is static)
    spmv_words_per_iteration: int
    #: SpMV messages per iteration
    spmv_messages_per_iteration: int
    #: scalar all-reduce words per iteration (dot products, linear model)
    reduction_words_per_iteration: int
    #: eigenvalue estimate (power iteration only)
    eigenvalue: float | None = None

    @property
    def total_words(self) -> int:
        """All words moved across the whole solve."""
        return self.iterations * (
            self.spmv_words_per_iteration + self.reduction_words_per_iteration
        )


def _spmv_cost(dec: Decomposition) -> tuple[int, int]:
    stats = communication_stats(dec)
    return stats.total_volume, stats.total_messages


def _allreduce_words(k: int, n_dots: int) -> int:
    """Scalar all-reduce cost under a linear (root-gather + bcast) model."""
    return 2 * (k - 1) * n_dots


def conjugate_gradient(
    dec: Decomposition,
    b: np.ndarray,
    tol: float = 1e-8,
    maxiter: int = 1000,
    x0: np.ndarray | None = None,
) -> SolveResult:
    """Unpreconditioned CG on the decomposed (SPD) matrix.

    Two dot products per iteration (``r.r`` and ``p.Ap``); the vector
    updates are communication-free under the symmetric distribution.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (dec.m,):
        raise ValueError("b has wrong shape")
    words, msgs = _spmv_cost(dec)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - simulate_spmv(dec, x).y if x0 is not None else b.copy()
    p = r.copy()
    rs = float(r @ r)
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    converged = np.sqrt(rs) / bnorm < tol
    while not converged and it < maxiter:
        ap = simulate_spmv(dec, p).y
        denom = float(p @ ap)
        if denom == 0.0:
            break
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        it += 1
        if np.sqrt(rs_new) / bnorm < tol:
            converged = True
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    resid = float(np.linalg.norm(b - simulate_spmv(dec, x).y))
    return SolveResult(
        x=x,
        iterations=it,
        converged=converged,
        residual=resid,
        spmv_words_per_iteration=words,
        spmv_messages_per_iteration=msgs,
        reduction_words_per_iteration=_allreduce_words(dec.k, 2),
    )


def jacobi(
    dec: Decomposition,
    b: np.ndarray,
    tol: float = 1e-8,
    maxiter: int = 2000,
) -> SolveResult:
    """Jacobi iteration ``x <- D^-1 (b - (A - D) x)``.

    Requires a fully nonzero diagonal.  One SpMV and one residual-norm
    all-reduce per iteration.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (dec.m,):
        raise ValueError("b has wrong shape")
    diag = np.zeros(dec.m, dtype=np.float64)
    on_diag = dec.nnz_row == dec.nnz_col
    diag[dec.nnz_row[on_diag]] = dec.nnz_val[on_diag]
    if np.any(diag == 0.0):
        raise ValueError("jacobi requires a nonzero diagonal")
    words, msgs = _spmv_cost(dec)
    x = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b)) or 1.0
    it = 0
    converged = False
    while it < maxiter:
        ax = simulate_spmv(dec, x).y
        resid = float(np.linalg.norm(b - ax))
        if resid / bnorm < tol:
            converged = True
            break
        x = x + (b - ax) / diag
        it += 1
    resid = float(np.linalg.norm(b - simulate_spmv(dec, x).y))
    return SolveResult(
        x=x,
        iterations=it,
        converged=converged,
        residual=resid,
        spmv_words_per_iteration=words,
        spmv_messages_per_iteration=msgs,
        reduction_words_per_iteration=_allreduce_words(dec.k, 1),
    )


def power_iteration(
    dec: Decomposition,
    tol: float = 1e-10,
    maxiter: int = 1000,
    seed: int | np.random.Generator | None = 0,
) -> SolveResult:
    """Dominant eigenpair by power iteration.

    One SpMV plus one norm all-reduce per iteration.  Returns the
    eigenvector in ``x`` and the Rayleigh-quotient estimate in
    ``eigenvalue``.
    """
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    words, msgs = _spmv_cost(dec)
    v = rng.standard_normal(dec.m)
    v /= np.linalg.norm(v)
    lam = 0.0
    it = 0
    converged = False
    while it < maxiter:
        av = simulate_spmv(dec, v).y
        norm = float(np.linalg.norm(av))
        if norm == 0.0:
            break
        v_new = av / norm
        lam_new = float(v_new @ simulate_spmv(dec, v_new).y)
        it += 1
        if abs(lam_new - lam) <= tol * max(abs(lam_new), 1.0):
            lam = lam_new
            v = v_new
            converged = True
            break
        lam = lam_new
        v = v_new
    av = simulate_spmv(dec, v).y
    resid = float(np.linalg.norm(av - lam * v))
    return SolveResult(
        x=v,
        iterations=it,
        converged=converged,
        residual=resid,
        spmv_words_per_iteration=words,
        spmv_messages_per_iteration=msgs,
        reduction_words_per_iteration=_allreduce_words(dec.k, 1),
        eigenvalue=lam,
    )
