"""Iterative solvers running on decomposed matrices.

§1 of the paper: "Repeated matrix-vector multiplication y = Ax ... is the
kernel operation in iterative solvers.  These algorithms also involve
linear operations on dense vectors.  In order to avoid the communication
of vector components during the linear vector operations, a symmetric
partitioning scheme is adopted."

This package realizes that setting: Krylov and stationary solvers whose
every multiply goes through the distributed simulator, with an exact
running account of the communication the decomposition costs them.  The
vector operations (axpy, dot) are free of vector-component communication
precisely because the decompositions are symmetric — dots need only a
scalar all-reduce, which the accounting tracks separately.
"""

from repro.solvers.iterative import (
    SolveResult,
    conjugate_gradient,
    jacobi,
    power_iteration,
)

__all__ = ["SolveResult", "conjugate_gradient", "jacobi", "power_iteration"]
