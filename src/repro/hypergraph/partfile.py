"""Partition-vector file I/O (PaToH / MeTiS ``.part`` convention).

Both tool families write K-way partitions as one part id per line; PaToH's
``WritePartition`` and MeTiS's ``pmetis`` outputs are interchangeable with
this module, so partitions can round-trip between this library and the
original tools the paper used.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro._util import INDEX_DTYPE

__all__ = ["write_partition", "read_partition"]


def write_partition(part: np.ndarray, path_or_file, comment: str = "") -> None:
    """Write one part id per line (optional ``%`` comment header)."""
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "w")
        close = True
    else:
        f = path_or_file
    try:
        if comment:
            for line in comment.splitlines():
                f.write(f"% {line}\n")
        for p in np.asarray(part).tolist():
            f.write(f"{int(p)}\n")
    finally:
        if close:
            f.close()


def read_partition(path_or_file, expected_length: int | None = None) -> np.ndarray:
    """Read a part vector; validates non-negativity and optional length."""
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "r")
        close = True
    else:
        f = path_or_file
    try:
        out = []
        for line in f:
            s = line.strip()
            if not s or s.startswith("%") or s.startswith("#"):
                continue
            out.append(int(s.split()[0]))
    finally:
        if close:
            f.close()
    part = np.asarray(out, dtype=INDEX_DTYPE)
    if len(part) and part.min() < 0:
        raise ValueError("negative part id in partition file")
    if expected_length is not None and len(part) != expected_length:
        raise ValueError(
            f"partition has {len(part)} entries, expected {expected_length}"
        )
    return part
