"""K-way partitions of a hypergraph and the paper's quality metrics.

Implements the three central definitions of §2 of the paper:

* **balance** (Eq. 1): every part weight ``W_k <= W_avg * (1 + eps)``;
* **cut-net cutsize** (Eq. 2): sum of the costs of nets connecting more than
  one part;
* **connectivity-minus-one cutsize** (Eq. 3): each cut net ``n_j``
  contributes ``c_j * (lambda_j - 1)`` — the metric that *exactly* equals
  communication volume under the fine-grain model.

All metrics are vectorized: connectivity per net is computed with one
lexsort over the (net, part) incidence pairs rather than a Python loop over
nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import INDEX_DTYPE, ensure_int_array
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "Partition",
    "compute_part_weights",
    "net_connectivities",
    "net_connectivity_sets",
    "cutsize_connectivity",
    "cutsize_cutnet",
    "imbalance",
    "is_balanced",
    "external_nets",
    "validate_partition",
]


def compute_part_weights(h: Hypergraph, part: np.ndarray, k: int) -> np.ndarray:
    """Weight of each part: ``W_k = sum of w_i for v_i in P_k``."""
    return np.bincount(part, weights=h.vertex_weights, minlength=k).astype(INDEX_DTYPE)


def net_connectivities(h: Hypergraph, part: np.ndarray) -> np.ndarray:
    """Connectivity ``lambda_j`` (number of distinct parts) of every net.

    Empty nets get connectivity 0 by convention (they can never be cut).
    """
    if h.num_pins == 0:
        return np.zeros(h.num_nets, dtype=INDEX_DTYPE)
    net_of_pin = np.repeat(np.arange(h.num_nets, dtype=INDEX_DTYPE), np.diff(h.xpins))
    pin_parts = part[h.pins]
    order = np.lexsort((pin_parts, net_of_pin))
    sn = net_of_pin[order]
    sp = pin_parts[order]
    # a (net, part) pair is "new" where either the net or the part changes
    new_pair = np.empty(len(sn), dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (sn[1:] != sn[:-1]) | (sp[1:] != sp[:-1])
    return np.bincount(sn[new_pair], minlength=h.num_nets).astype(INDEX_DTYPE)


def net_connectivity_sets(h: Hypergraph, part: np.ndarray) -> list[np.ndarray]:
    """Connectivity set ``Lambda_j`` (sorted array of part ids) per net.

    Used by the SpMV simulator's decode step and by tests.  Fully
    vectorized: one lexsort over the (net, part) incidence pairs dedups
    every net's part set at once, and the result is sliced back per net —
    no per-net ``np.unique`` calls (the former Python loop over all nets
    dominated decode time on large instances; see
    ``benchmarks/bench_connectivity_sets.py``).
    """
    part = np.asarray(part)
    if h.num_pins == 0:
        return [np.empty(0, dtype=part.dtype) for _ in range(h.num_nets)]
    net_of_pin = h.net_of_pin()
    pin_parts = part[h.pins]
    order = np.lexsort((pin_parts, net_of_pin))
    sn = net_of_pin[order]
    sp = pin_parts[order]
    new_pair = np.empty(len(sn), dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (sn[1:] != sn[:-1]) | (sp[1:] != sp[:-1])
    # distinct parts per net, grouped by net in one contiguous array;
    # slice it apart with plain-int bounds (5x cheaper than np.split)
    nets = sn[new_pair]
    parts = sp[new_pair]
    counts = np.bincount(nets, minlength=h.num_nets)
    bounds = np.empty(h.num_nets + 1, dtype=INDEX_DTYPE)
    bounds[0] = 0
    np.cumsum(counts, out=bounds[1:])
    b = bounds.tolist()
    return [parts[b[j] : b[j + 1]] for j in range(h.num_nets)]


def cutsize_connectivity(h: Hypergraph, part: np.ndarray) -> int:
    """Connectivity-minus-one cutsize (Eq. 3): ``sum c_j * (lambda_j - 1)``."""
    lam = net_connectivities(h, part)
    nonempty = lam > 0
    return int(np.sum(h.net_costs[nonempty] * (lam[nonempty] - 1)))


def cutsize_cutnet(h: Hypergraph, part: np.ndarray) -> int:
    """Cut-net cutsize (Eq. 2): ``sum of c_j over nets with lambda_j > 1``."""
    lam = net_connectivities(h, part)
    return int(np.sum(h.net_costs[lam > 1]))


def external_nets(h: Hypergraph, part: np.ndarray) -> np.ndarray:
    """Ids of the cut (external) nets of the partition."""
    return np.flatnonzero(net_connectivities(h, part) > 1)


def imbalance(h: Hypergraph, part: np.ndarray, k: int) -> float:
    """Percent-free imbalance ratio ``(W_max - W_avg) / W_avg``.

    The paper reports ``100 x (W_max - W_avg) / W_avg``; this function
    returns the unscaled ratio.
    """
    w = compute_part_weights(h, part, k)
    avg = h.total_vertex_weight() / k
    if avg == 0:
        return 0.0
    return float((w.max() - avg) / avg)


def is_balanced(h: Hypergraph, part: np.ndarray, k: int, epsilon: float) -> bool:
    """Check the balance criterion of Eq. 1 with tolerance *epsilon*."""
    return imbalance(h, part, k) <= epsilon + 1e-12


def validate_partition(h: Hypergraph, part: np.ndarray, k: int) -> None:
    """Raise if *part* is not a valid K-way partition of *h*'s vertices.

    A valid partition assigns every vertex a part id in ``[0, k)``; it must
    also respect any fixed-vertex pre-assignments carried by the hypergraph.
    (The paper's definition additionally requires non-empty parts; we relax
    that for degenerate instances but expose emptiness via part weights.)
    """
    part = np.asarray(part)
    if part.shape != (h.num_vertices,):
        raise ValueError("partition vector has wrong length")
    if h.num_vertices and (part.min() < 0 or part.max() >= k):
        raise ValueError("part id out of range")
    if h.fixed is not None:
        locked = h.fixed >= 0
        if np.any(part[locked] != h.fixed[locked]):
            raise ValueError("partition violates fixed-vertex assignments")


@dataclass
class Partition:
    """A K-way partition of a hypergraph plus lazily computed metrics.

    Attributes
    ----------
    part:
        Array of length ``num_vertices``: part id of each vertex.
    k:
        Number of parts.
    """

    part: np.ndarray
    k: int
    _h: Hypergraph | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.part = ensure_int_array(self.part, "part")

    def bind(self, h: Hypergraph) -> "Partition":
        """Attach the hypergraph this partition refers to (for metrics)."""
        validate_partition(h, self.part, self.k)
        self._h = h
        return self

    # -- metric shortcuts ------------------------------------------------
    def _hg(self) -> Hypergraph:
        if self._h is None:
            raise RuntimeError("Partition not bound to a hypergraph; call .bind(h)")
        return self._h

    @property
    def part_weights(self) -> np.ndarray:
        """Weights of the K parts."""
        return compute_part_weights(self._hg(), self.part, self.k)

    @property
    def cutsize(self) -> int:
        """Connectivity-minus-one cutsize (Eq. 3), the paper's objective."""
        return cutsize_connectivity(self._hg(), self.part)

    @property
    def cutsize_cutnet(self) -> int:
        """Cut-net cutsize (Eq. 2)."""
        return cutsize_cutnet(self._hg(), self.part)

    @property
    def imbalance(self) -> float:
        """``(W_max - W_avg) / W_avg``."""
        return imbalance(self._hg(), self.part, self.k)

    def is_balanced(self, epsilon: float) -> bool:
        """Whether the partition satisfies Eq. 1 for tolerance *epsilon*."""
        return is_balanced(self._hg(), self.part, self.k, epsilon)
