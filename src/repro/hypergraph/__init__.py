"""Hypergraph substrate.

A hypergraph ``H = (V, N)`` is a set of vertices and a set of *nets*
(hyperedges), each net being a subset of the vertices (its *pins*).  This
package provides:

* :class:`~repro.hypergraph.hypergraph.Hypergraph` — immutable dual-CSR
  storage with vertex weights, net costs and optional fixed-vertex
  assignments;
* :mod:`~repro.hypergraph.builders` — construction helpers and validation;
* :mod:`~repro.hypergraph.partition` — K-way partition representation and the
  quality metrics of the paper (Eqs. 1–3): balance, cut-net cutsize and
  connectivity-minus-one cutsize;
* :mod:`~repro.hypergraph.io` — PaToH / hMeTiS file formats;
* :mod:`~repro.hypergraph.shm` — zero-copy shared-memory transport used by
  the multi-start engine's process backend.
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.shm import SharedHypergraph
from repro.hypergraph.builders import (
    hypergraph_from_netlists,
    hypergraph_from_csr,
    validate_hypergraph,
)
from repro.hypergraph.partfile import read_partition, write_partition
from repro.hypergraph.partition import (
    Partition,
    compute_part_weights,
    net_connectivities,
    cutsize_connectivity,
    cutsize_cutnet,
    imbalance,
    is_balanced,
    external_nets,
    validate_partition,
)

__all__ = [
    "Hypergraph",
    "SharedHypergraph",
    "hypergraph_from_netlists",
    "hypergraph_from_csr",
    "validate_hypergraph",
    "Partition",
    "compute_part_weights",
    "net_connectivities",
    "cutsize_connectivity",
    "cutsize_cutnet",
    "imbalance",
    "is_balanced",
    "external_nets",
    "validate_partition",
    "read_partition",
    "write_partition",
]
