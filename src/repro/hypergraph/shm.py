"""Zero-copy hypergraph transport over POSIX shared memory.

The multi-start engine's process backend used to pickle the whole
:class:`~repro.hypergraph.hypergraph.Hypergraph` into every task — on a
one-copy-per-start protocol the serialization alone can cost more than the
partitioning it buys (the PR-2 ``BENCH_multistart.json`` records the
process backend *losing* to serial for exactly this reason).  This module
packs all CSR arrays of a hypergraph into one
:class:`multiprocessing.shared_memory.SharedMemory` segment so that a task
ships only the segment *name* plus a table of (offset, dtype, length)
descriptors; each worker process attaches once (pool initializer) and maps
the arrays in place — zero copies, zero pickling of pin data.

Lifecycle contract
------------------
The creating side owns the segment: :meth:`SharedHypergraph.close` both
closes and unlinks it and is idempotent, so callers can (and must) put it
in a ``finally`` — the engine guarantees unlink even when a start crashes.
Workers attach with tracking disabled (attaching is not owning; letting the
``resource_tracker`` register the attachment makes every worker exit try to
unlink the segment again, which is exactly the double-free the tracker is
meant to prevent).  On Linux an unlinked segment stays mapped until the
last attached process exits, so the owner may unlink while workers still
compute.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = [
    "SharedHypergraph",
    "HeartbeatBoard",
    "hypergraph_to_shm",
    "hypergraph_from_shm",
]

#: Hypergraph array slots shipped through the segment, in packing order.
_ARRAY_SLOTS = (
    "xpins",
    "pins",
    "xnets",
    "vnets",
    "vertex_weights",
    "net_costs",
    "fixed",
)


def _attach(name: str):
    """Attach to an existing segment without registering ownership."""
    from multiprocessing import shared_memory

    try:  # Python >= 3.13 spells it explicitly
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Older interpreters register attachments with the resource tracker as
    # if they were creations (bpo-39959): every attaching process would
    # then try to unlink the segment on exit.  Suppress the registration
    # for the duration of the attach — the creating side stays the sole
    # registered owner.
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedHypergraph:
    """Owner-side handle of a hypergraph exported to shared memory.

    ``meta`` is the picklable descriptor a worker needs to attach
    (:func:`hypergraph_from_shm`); everything else lives in the segment.
    """

    def __init__(self, shm, meta: dict) -> None:
        self._shm = shm
        self.meta = meta

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return int(self.meta["nbytes"])

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        An ``OSError`` from the unlink itself (injectable at the
        ``shm.unlink`` fault site) must not fail the partitioning call
        that already succeeded: it is absorbed and counted as
        ``shm.unlink_errors`` telemetry.
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                _fault_trip("shm.unlink")
                shm.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                get_recorder().add("shm.unlink_errors")

    def __enter__(self) -> "SharedHypergraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort safety net; close() is the API
        try:
            self.close()
        except Exception:
            pass


class HeartbeatBoard:
    """One ``float64`` monotonic-clock timestamp per worker, in shared memory.

    The supervision layer of :mod:`repro.partitioner.resilience` uses this
    as its liveness channel: each supervised worker's heartbeat thread
    stamps its slot every ``heartbeat_interval`` seconds and the parent
    reads the slots without any syscall traffic — ``CLOCK_MONOTONIC`` is
    system-wide on the platforms we run on, so parent and child timestamps
    are directly comparable.  Same ownership contract as
    :class:`SharedHypergraph`: the creating side closes *and* unlinks,
    workers attach with tracking disabled and only close.
    """

    def __init__(self, shm, n_slots: int, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.name = shm.name
        self.slots = np.ndarray((n_slots,), dtype=np.float64, buffer=shm.buf)

    @classmethod
    def create(cls, n_slots: int) -> "HeartbeatBoard":
        """Allocate a zeroed board for *n_slots* workers (owner side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=8 * max(n_slots, 1))
        board = cls(shm, n_slots, owner=True)
        board.slots[:] = 0.0
        return board

    @classmethod
    def attach(cls, name: str, n_slots: int) -> "HeartbeatBoard":
        """Map an existing board without taking ownership (worker side)."""
        return cls(_attach(name), n_slots, owner=False)

    def beat(self, slot: int) -> None:
        """Stamp *slot* with the current monotonic time."""
        import time

        self.slots[slot] = time.monotonic()

    def last_beat(self, slot: int) -> float:
        """Newest stamp of *slot* (0.0 if the worker never beat)."""
        return float(self.slots[slot])

    def close(self) -> None:
        """Release the mapping; the owner also unlinks (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self.slots = None
        try:
            shm.close()
        finally:
            if self._owner:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                except OSError:
                    get_recorder().add("shm.unlink_errors")

    def __enter__(self) -> "HeartbeatBoard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort safety net; close() is the API
        try:
            self.close()
        except Exception:
            pass


def hypergraph_to_shm(h: Hypergraph) -> SharedHypergraph:
    """Export *h*'s arrays into one fresh shared-memory segment.

    Raises whatever :class:`multiprocessing.shared_memory.SharedMemory`
    raises when shared memory is unavailable (callers fall back to pickle
    transport).
    """
    from multiprocessing import shared_memory

    _fault_trip("shm.create")
    arrays = {}
    total = 0
    for slot in _ARRAY_SLOTS:
        arr = getattr(h, slot)
        if arr is None:  # fixed is optional
            continue
        arr = np.ascontiguousarray(arr)
        arrays[slot] = arr
        total += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    table = {}
    offset = 0
    try:
        for slot, arr in arrays.items():
            end = offset + arr.nbytes
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf[offset:end])
            view[...] = arr
            table[slot] = (offset, str(arr.dtype), int(arr.shape[0]))
            offset = end
    except Exception:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        raise
    meta = {
        "name": shm.name,
        "num_vertices": h.num_vertices,
        "num_nets": h.num_nets,
        "nbytes": total,
        "arrays": table,
    }
    return SharedHypergraph(shm, meta)


def hypergraph_from_shm(meta: dict) -> Hypergraph:
    """Attach to a segment exported by :func:`hypergraph_to_shm`.

    The returned hypergraph's arrays are read-only views over the shared
    buffer — no copy, no re-validation, no transpose rebuild.  The
    attachment handle is parked on the instance so the mapping outlives the
    arrays using it.
    """
    _fault_trip("shm.attach")
    shm = _attach(meta["name"])
    h = Hypergraph.__new__(Hypergraph)
    h.num_vertices = int(meta["num_vertices"])
    h.num_nets = int(meta["num_nets"])
    h.fixed = None
    for slot, (offset, dtype, length) in meta["arrays"].items():
        dt = np.dtype(dtype)
        end = offset + dt.itemsize * length
        view = np.ndarray((length,), dtype=dt, buffer=shm.buf[offset:end])
        view.flags.writeable = False
        setattr(h, slot, view)
    h._views = {"_shm_handle": shm}  # keep the mapping alive
    return h
