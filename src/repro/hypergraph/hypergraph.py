"""Dual-CSR hypergraph storage.

The representation mirrors PaToH's: the net→pin incidence is stored as a CSR
pair ``(xpins, pins)`` and the transposed vertex→net incidence as
``(xnets, vnets)``.  Both views are kept because the partitioning algorithms
walk the structure in both directions in their inner loops (coarsening walks
vertex→net→pin; refinement walks vertex→net and net→pin).

Vertices carry integer weights (computational load; the fine-grain model uses
unit weights and zero-weight dummy diagonal vertices).  Nets carry integer
costs (communication word counts; unit in this paper).  An optional
``fixed`` array pre-assigns vertices to parts — the mechanism §3 of the paper
uses to support reduction problems with pre-assigned inputs/outputs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro._util import INDEX_DTYPE, ensure_int_array, prefix_from_counts

__all__ = ["Hypergraph"]


def _transpose_csr(xadj: np.ndarray, adj: np.ndarray, ncols: int) -> tuple[np.ndarray, np.ndarray]:
    """Transpose a CSR incidence (rows → cols) into (cols → rows).

    Fully vectorized: a counting sort of the column indices, carrying the row
    index of each entry.
    """
    nrows = len(xadj) - 1
    counts = np.bincount(adj, minlength=ncols)
    xout = prefix_from_counts(counts)
    order = np.argsort(adj, kind="stable")
    rows = np.repeat(np.arange(nrows, dtype=INDEX_DTYPE), np.diff(xadj))
    return xout, rows[order]


class Hypergraph:
    """Immutable hypergraph with weights, costs and optional fixed vertices.

    Parameters
    ----------
    xpins, pins:
        CSR arrays for net → pin lists.  ``pins[xpins[j]:xpins[j+1]]`` are the
        vertices of net *j*.  Pin lists must contain no duplicates.
    vertex_weights:
        Integer weight per vertex; defaults to all ones.
    net_costs:
        Integer cost per net; defaults to all ones.
    fixed:
        Optional per-vertex pre-assignment (part id, or -1 for free).
    validate:
        When true (default) the structure is checked for well-formedness.
    """

    __slots__ = (
        "num_vertices",
        "num_nets",
        "xpins",
        "pins",
        "xnets",
        "vnets",
        "vertex_weights",
        "net_costs",
        "fixed",
        "_views",
    )

    def __init__(
        self,
        num_vertices: int,
        xpins: Sequence[int] | np.ndarray,
        pins: Sequence[int] | np.ndarray,
        vertex_weights: Sequence[int] | np.ndarray | None = None,
        net_costs: Sequence[int] | np.ndarray | None = None,
        fixed: Sequence[int] | np.ndarray | None = None,
        validate: bool = True,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.xpins = ensure_int_array(xpins, "xpins")
        self.pins = ensure_int_array(pins, "pins")
        self.num_nets = len(self.xpins) - 1

        if vertex_weights is None:
            self.vertex_weights = np.ones(self.num_vertices, dtype=INDEX_DTYPE)
        else:
            self.vertex_weights = ensure_int_array(vertex_weights, "vertex_weights")
        if net_costs is None:
            self.net_costs = np.ones(self.num_nets, dtype=INDEX_DTYPE)
        else:
            self.net_costs = ensure_int_array(net_costs, "net_costs")
        if fixed is None:
            self.fixed = None
        else:
            self.fixed = ensure_int_array(fixed, "fixed")

        if validate:
            self._check()

        self.xnets, self.vnets = _transpose_csr(self.xpins, self.pins, self.num_vertices)
        self._views: dict[str, object] = {}

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if len(self.xpins) < 1 or self.xpins[0] != 0:
            raise ValueError("xpins must start at 0")
        if np.any(np.diff(self.xpins) < 0):
            raise ValueError("xpins must be non-decreasing")
        if self.xpins[-1] != len(self.pins):
            raise ValueError("xpins[-1] must equal len(pins)")
        if len(self.pins) and (self.pins.min() < 0 or self.pins.max() >= self.num_vertices):
            raise ValueError("pin vertex id out of range")
        if len(self.vertex_weights) != self.num_vertices:
            raise ValueError("vertex_weights length mismatch")
        if np.any(self.vertex_weights < 0):
            raise ValueError("vertex weights must be non-negative")
        if len(self.net_costs) != self.num_nets:
            raise ValueError("net_costs length mismatch")
        if np.any(self.net_costs < 0):
            raise ValueError("net costs must be non-negative")
        if self.fixed is not None and len(self.fixed) != self.num_vertices:
            raise ValueError("fixed length mismatch")
        # duplicate pins within one net break the pin-count bookkeeping of
        # every algorithm downstream, so reject them here once and for all
        if len(self.pins):
            net_of_pin = np.repeat(
                np.arange(self.num_nets, dtype=INDEX_DTYPE), np.diff(self.xpins)
            )
            order = np.lexsort((self.pins, net_of_pin))
            sp, sn = self.pins[order], net_of_pin[order]
            dup = np.flatnonzero((sp[1:] == sp[:-1]) & (sn[1:] == sn[:-1]))
            if len(dup):
                raise ValueError(f"net {int(sn[dup[0]])} has duplicate pins")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_pins(self) -> int:
        """Total number of pins (sum of net sizes)."""
        return len(self.pins)

    def pins_of(self, net: int) -> np.ndarray:
        """Vertices of *net* (a view, do not mutate)."""
        return self.pins[self.xpins[net] : self.xpins[net + 1]]

    def nets_of(self, vertex: int) -> np.ndarray:
        """Nets incident to *vertex* (a view, do not mutate)."""
        return self.vnets[self.xnets[vertex] : self.xnets[vertex + 1]]

    def net_size(self, net: int) -> int:
        """Number of pins of *net*."""
        return int(self.xpins[net + 1] - self.xpins[net])

    def net_sizes(self) -> np.ndarray:
        """Array of all net sizes."""
        return np.diff(self.xpins)

    def vertex_degree(self, vertex: int) -> int:
        """Number of nets incident to *vertex*."""
        return int(self.xnets[vertex + 1] - self.xnets[vertex])

    def vertex_degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self.xnets)

    def total_vertex_weight(self) -> int:
        """Sum of all vertex weights."""
        return int(self.vertex_weights.sum())

    def iter_nets(self) -> Iterator[np.ndarray]:
        """Yield the pin list of every net in order."""
        for j in range(self.num_nets):
            yield self.pins_of(j)

    # ------------------------------------------------------------------
    # cached derived views
    #
    # The hypergraph is immutable after construction, so derived
    # structures the inner loops need — plain-list copies of the CSR
    # arrays, the pin→net map, the gain bound — are computed once and
    # shared by every consumer (coarsening, FM refinement, greedy
    # growing, V-cycles all revisit the same level objects).  Callers
    # must treat the returned objects as read-only.
    # ------------------------------------------------------------------
    def _view(self, key: str, make):
        views = self._views
        out = views.get(key)
        if out is None:
            out = views[key] = make()
        return out

    def xpins_list(self) -> list[int]:
        """``xpins`` as a plain list (cached; read-only)."""
        return self._view("xpins", self.xpins.tolist)

    def pins_list(self) -> list[int]:
        """``pins`` as a plain list (cached; read-only)."""
        return self._view("pins", self.pins.tolist)

    def xnets_list(self) -> list[int]:
        """``xnets`` as a plain list (cached; read-only)."""
        return self._view("xnets", self.xnets.tolist)

    def vnets_list(self) -> list[int]:
        """``vnets`` as a plain list (cached; read-only)."""
        return self._view("vnets", self.vnets.tolist)

    def weights_list(self) -> list[int]:
        """``vertex_weights`` as a plain list (cached; read-only)."""
        return self._view("w", self.vertex_weights.tolist)

    def costs_list(self) -> list[int]:
        """``net_costs`` as a plain list (cached; read-only)."""
        return self._view("cost", self.net_costs.tolist)

    def net_of_pin(self) -> np.ndarray:
        """Net id of every pin position (cached; read-only)."""
        return self._view(
            "net_of_pin",
            lambda: np.repeat(
                np.arange(self.num_nets, dtype=INDEX_DTYPE), np.diff(self.xpins)
            ),
        )

    def max_incident_cost(self) -> int:
        """Max over vertices of the total incident net cost (cached).

        This is the classic FM gain-magnitude bound used to size the
        gain buckets.
        """

        def compute() -> int:
            if self.num_pins == 0:
                return 1
            tot = np.zeros(self.num_vertices, dtype=np.int64)
            np.add.at(tot, self.pins, self.net_costs[self.net_of_pin()])
            return max(int(tot.max()), 1)

        return self._view("gain_bound", compute)

    # ------------------------------------------------------------------
    # shared-memory transport (zero-copy alternative to pickling for the
    # engine's process backend; see repro.hypergraph.shm)
    # ------------------------------------------------------------------
    def to_shm(self):
        """Export the CSR arrays into one shared-memory segment.

        Returns a :class:`repro.hypergraph.shm.SharedHypergraph` owner
        handle whose picklable ``meta`` dict (segment name + dtypes +
        offsets) is all a worker needs to attach via :meth:`from_shm`.
        The caller owns the segment and must ``close()`` it (context
        manager supported); workers never unlink.
        """
        from repro.hypergraph.shm import hypergraph_to_shm

        return hypergraph_to_shm(self)

    @staticmethod
    def from_shm(meta: dict) -> "Hypergraph":
        """Attach to a segment exported by :meth:`to_shm` (zero-copy)."""
        from repro.hypergraph.shm import hypergraph_from_shm

        return hypergraph_from_shm(meta)

    # ------------------------------------------------------------------
    # pickling (multi-start engine worker processes receive the hypergraph
    # by pickle; the derived-view cache is dropped rather than shipped)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__ if s != "_views"}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._views = {}

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(V={self.num_vertices}, N={self.num_nets}, "
            f"P={self.num_pins}, W={self.total_vertex_weight()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        same_fixed = (self.fixed is None) == (other.fixed is None) and (
            self.fixed is None or np.array_equal(self.fixed, other.fixed)
        )
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.xpins, other.xpins)
            and np.array_equal(self.pins, other.pins)
            and np.array_equal(self.vertex_weights, other.vertex_weights)
            and np.array_equal(self.net_costs, other.net_costs)
            and same_fixed
        )

    def __hash__(self) -> int:  # consistent with custom __eq__
        return hash((self.num_vertices, self.num_nets, self.num_pins))
