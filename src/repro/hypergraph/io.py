"""Hypergraph file I/O: PaToH and hMeTiS text formats.

PaToH format (the tool the paper runs)::

    % comment lines start with %
    <base> <|V|> <|N|> <|pins|> [<flag>]
    ... one line per net: [cost] pin pin pin ...
    [one line of |V| vertex weights when flag selects weighted vertices]

``flag`` is 0 (unweighted), 1 (weighted vertices), 2 (weighted nets) or 3
(both).  ``base`` is 0 or 1 and offsets every pin index.

hMeTiS format::

    <|N|> <|V|> [<fmt>]
    ... one line per net (1-based pins), cost first when fmt has nets weighted
    ... one line per vertex weight when fmt has vertices weighted

fmt is omitted (unweighted), 1 (net costs), 10 (vertex weights) or 11 (both).

Both readers validate as they parse: out-of-range pins, duplicate pins
within a net, unparseable tokens and truncated files raise
:class:`repro.errors.ReproFormatError` with file/line context.
``repair=True`` drops out-of-range pins and dedups duplicate pins (first
occurrence wins) with one summary warning instead.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import TextIO

import numpy as np

from repro._util import INDEX_DTYPE, prefix_from_counts
from repro.errors import ReproFormatError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["write_patoh", "read_patoh", "write_hmetis", "read_hmetis"]


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def _source_of(path_or_file, f) -> str:
    if isinstance(path_or_file, (str, Path)):
        return str(path_or_file)
    return getattr(f, "name", None) or "<stream>"


def _ints(text: str, source: str, lineno: int) -> list[int]:
    """Parse a whitespace-separated integer line with location context."""
    try:
        return [int(t) for t in text.split()]
    except ValueError:
        raise ReproFormatError(
            f"unparseable integer line {text!r}", source=source, line=lineno
        ) from None


def _check_net_pins(
    pins: list[int], nv: int, net: int, source: str, lineno: int,
    repair: bool,
) -> tuple[list[int], int]:
    """Validate one net's pin list; returns (clean pins, #repaired)."""
    out: list[int] = []
    seen: set[int] = set()
    repaired = 0
    for p in pins:
        if p < 0 or p >= nv:
            if not repair:
                raise ReproFormatError(
                    f"net {net}: pin {p} out of range [0, {nv})",
                    source=source, line=lineno,
                )
            repaired += 1
            continue
        if p in seen:
            if not repair:
                raise ReproFormatError(
                    f"net {net}: duplicate pin {p}", source=source,
                    line=lineno,
                )
            repaired += 1
            continue
        seen.add(p)
        out.append(p)
    return out, repaired


def _nonunit(arr: np.ndarray) -> bool:
    return bool(np.any(arr != 1))


# ----------------------------------------------------------------------
# PaToH
# ----------------------------------------------------------------------
def write_patoh(h: Hypergraph, path_or_file, base: int = 1) -> None:
    """Write *h* in PaToH text format (default 1-based pins)."""
    f, close = _open(path_or_file, "w")
    try:
        wv = _nonunit(h.vertex_weights)
        wn = _nonunit(h.net_costs)
        flag = (1 if wv else 0) | (2 if wn else 0)
        f.write(f"{base} {h.num_vertices} {h.num_nets} {h.num_pins} {flag}\n")
        for j in range(h.num_nets):
            pins = h.pins_of(j) + base
            prefix = f"{int(h.net_costs[j])} " if wn else ""
            f.write(prefix + " ".join(map(str, pins.tolist())) + "\n")
        if wv:
            f.write(" ".join(map(str, h.vertex_weights.tolist())) + "\n")
    finally:
        if close:
            f.close()


def read_patoh(path_or_file, repair: bool = False) -> Hypergraph:
    """Read a hypergraph from PaToH text format.

    Malformed input raises :class:`~repro.errors.ReproFormatError` with
    file/line context; ``repair=True`` drops out-of-range and duplicate
    pins with one summary warning instead.
    """
    f, close = _open(path_or_file, "r")
    source = _source_of(path_or_file, f)
    try:
        tokens = _tokenize(f, source)
        try:
            header_line = next(tokens.lines)
        except StopIteration:
            raise ReproFormatError("empty file", source=source) from None
        header = _ints(header_line, source, tokens.lineno)
        if len(header) < 4:
            raise ReproFormatError(
                "malformed PaToH header (need base |V| |N| |pins|)",
                source=source, line=tokens.lineno,
            )
        base, nv, nn, npins = header[:4]
        flag = header[4] if len(header) > 4 else 0
        if nv < 0 or nn < 0 or npins < 0:
            raise ReproFormatError(
                "header counts must be non-negative",
                source=source, line=tokens.lineno,
            )
        wv, wn = bool(flag & 1), bool(flag & 2)
        netlists: list[list[int]] = []
        costs: list[int] = []
        seen = 0
        repaired = 0
        # PaToH is line-oriented: one net per line (blank = empty net)
        for net in range(nn):
            parts = _ints(tokens.net_line(), source, tokens.lineno)
            if wn:
                if not parts:
                    raise ReproFormatError(
                        f"net {net}: missing cost", source=source,
                        line=tokens.lineno,
                    )
                costs.append(parts[0])
                parts = parts[1:]
            seen += len(parts)
            pins_net, fixed = _check_net_pins(
                [p - base for p in parts], nv, net, source, tokens.lineno,
                repair,
            )
            repaired += fixed
            netlists.append(pins_net)
        if seen != npins:
            raise ReproFormatError(
                f"pin count mismatch: header says {npins}, read {seen}",
                source=source,
            )
        if repaired:
            warnings.warn(
                f"{source}: repaired {repaired} defective pins "
                "(out-of-range/duplicates dropped)",
                stacklevel=2,
            )
        weights = None
        if wv:
            wtoks: list[int] = []
            while len(wtoks) < nv:
                try:
                    wtoks.extend(_ints(next(tokens.lines), source, tokens.lineno))
                except StopIteration:
                    raise ReproFormatError(
                        f"expected {nv} vertex weights, read {len(wtoks)}",
                        source=source,
                    ) from None
            weights = np.asarray(wtoks[:nv], dtype=INDEX_DTYPE)
        xpins = prefix_from_counts([len(n) for n in netlists])
        pins = (
            np.concatenate([np.asarray(n, dtype=INDEX_DTYPE) for n in netlists])
            if netlists and any(netlists)
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        return Hypergraph(
            nv, xpins, pins,
            vertex_weights=weights,
            net_costs=np.asarray(costs, dtype=INDEX_DTYPE) if wn else None,
        )
    finally:
        if close:
            f.close()


# ----------------------------------------------------------------------
# hMeTiS
# ----------------------------------------------------------------------
def write_hmetis(h: Hypergraph, path_or_file) -> None:
    """Write *h* in hMeTiS text format (1-based pins)."""
    f, close = _open(path_or_file, "w")
    try:
        wv = _nonunit(h.vertex_weights)
        wn = _nonunit(h.net_costs)
        # hMeTiS fmt: ones digit = net costs present, tens digit = vertex
        # weights present (manual §5.1): 1, 10 or 11
        fmt_num = (10 if wv else 0) + (1 if wn else 0)
        header = f"{h.num_nets} {h.num_vertices}"
        if fmt_num:
            header += f" {fmt_num}"
        f.write(header + "\n")
        for j in range(h.num_nets):
            pins = h.pins_of(j) + 1
            prefix = f"{int(h.net_costs[j])} " if wn else ""
            f.write(prefix + " ".join(map(str, pins.tolist())) + "\n")
        if wv:
            for w in h.vertex_weights.tolist():
                f.write(f"{w}\n")
    finally:
        if close:
            f.close()


def read_hmetis(path_or_file, repair: bool = False) -> Hypergraph:
    """Read a hypergraph from hMeTiS text format.

    Malformed input raises :class:`~repro.errors.ReproFormatError` with
    file/line context; ``repair=True`` drops out-of-range and duplicate
    pins with one summary warning instead.
    """
    f, close = _open(path_or_file, "r")
    source = _source_of(path_or_file, f)
    try:
        tokens = _tokenize(f, source)
        try:
            header = next(tokens.lines).split()
        except StopIteration:
            raise ReproFormatError("empty file", source=source) from None
        if len(header) < 2:
            raise ReproFormatError(
                "malformed hMeTiS header (need |N| |V| [fmt])",
                source=source, line=tokens.lineno,
            )
        try:
            nn, nv = int(header[0]), int(header[1])
        except ValueError:
            raise ReproFormatError(
                f"unparseable hMeTiS header {' '.join(header)!r}",
                source=source, line=tokens.lineno,
            ) from None
        if nn < 0 or nv < 0:
            raise ReproFormatError(
                "header counts must be non-negative",
                source=source, line=tokens.lineno,
            )
        fmt = header[2] if len(header) > 2 else "0"
        wn = fmt in ("1", "11")
        wv = fmt in ("10", "11")
        netlists: list[list[int]] = []
        costs: list[int] = []
        repaired = 0
        for net in range(nn):
            parts = _ints(tokens.net_line(), source, tokens.lineno)
            if wn:
                if not parts:
                    raise ReproFormatError(
                        f"net {net}: missing cost", source=source,
                        line=tokens.lineno,
                    )
                costs.append(parts[0])
                parts = parts[1:]
            pins_net, fixed = _check_net_pins(
                [p - 1 for p in parts], nv, net, source, tokens.lineno,
                repair,
            )
            repaired += fixed
            netlists.append(pins_net)
        if repaired:
            warnings.warn(
                f"{source}: repaired {repaired} defective pins "
                "(out-of-range/duplicates dropped)",
                stacklevel=2,
            )
        weights = None
        if wv:
            wlist = []
            for _ in range(nv):
                try:
                    wlist.append(_ints(next(tokens.lines), source, tokens.lineno)[0])
                except StopIteration:
                    raise ReproFormatError(
                        f"expected {nv} vertex weights, read {len(wlist)}",
                        source=source,
                    ) from None
            weights = np.asarray(wlist, dtype=INDEX_DTYPE)
        xpins = prefix_from_counts([len(n) for n in netlists])
        pins = (
            np.concatenate([np.asarray(n, dtype=INDEX_DTYPE) for n in netlists])
            if netlists and any(netlists)
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        return Hypergraph(
            nv, xpins, pins,
            vertex_weights=weights,
            net_costs=np.asarray(costs, dtype=INDEX_DTYPE) if wn else None,
        )
    finally:
        if close:
            f.close()


# ----------------------------------------------------------------------
class _TokenStream:
    """Line reader shared by both format parsers.

    ``lines`` skips comments *and* blanks (headers, weight blocks);
    :meth:`net_line` skips only comments — inside the net block a blank
    line is data: it encodes an empty net (a net with zero pins writes as
    an empty line, and swallowing it would shift every following net up
    by one).
    """

    def __init__(self, f: TextIO, source: str = "<stream>") -> None:
        self._f = f
        self.source = source
        #: 1-based number of the line most recently yielded
        self.lineno = 0
        self.lines = self._line_iter()

    def _line_iter(self):
        while True:
            line = self._f.readline()
            if not line:
                return
            self.lineno += 1
            s = line.strip()
            if not s or s.startswith("%") or s.startswith("#"):
                continue
            yield s

    def net_line(self) -> str:
        """Next net line; blank means an empty net, comments are skipped."""
        while True:
            line = self._f.readline()
            if not line:
                raise ReproFormatError(
                    "unexpected end of file inside net block",
                    source=self.source, line=self.lineno,
                )
            self.lineno += 1
            s = line.strip()
            if s.startswith("%") or s.startswith("#"):
                continue
            return s


def _tokenize(f: TextIO, source: str = "<stream>") -> _TokenStream:
    return _TokenStream(f, source)
