"""Hypergraph file I/O: PaToH and hMeTiS text formats.

PaToH format (the tool the paper runs)::

    % comment lines start with %
    <base> <|V|> <|N|> <|pins|> [<flag>]
    ... one line per net: [cost] pin pin pin ...
    [one line of |V| vertex weights when flag selects weighted vertices]

``flag`` is 0 (unweighted), 1 (weighted vertices), 2 (weighted nets) or 3
(both).  ``base`` is 0 or 1 and offsets every pin index.

hMeTiS format::

    <|N|> <|V|> [<fmt>]
    ... one line per net (1-based pins), cost first when fmt has nets weighted
    ... one line per vertex weight when fmt has vertices weighted

fmt is omitted (unweighted), 1 (net costs), 10 (vertex weights) or 11 (both).
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from repro._util import INDEX_DTYPE, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["write_patoh", "read_patoh", "write_hmetis", "read_hmetis"]


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def _nonunit(arr: np.ndarray) -> bool:
    return bool(np.any(arr != 1))


# ----------------------------------------------------------------------
# PaToH
# ----------------------------------------------------------------------
def write_patoh(h: Hypergraph, path_or_file, base: int = 1) -> None:
    """Write *h* in PaToH text format (default 1-based pins)."""
    f, close = _open(path_or_file, "w")
    try:
        wv = _nonunit(h.vertex_weights)
        wn = _nonunit(h.net_costs)
        flag = (1 if wv else 0) | (2 if wn else 0)
        f.write(f"{base} {h.num_vertices} {h.num_nets} {h.num_pins} {flag}\n")
        for j in range(h.num_nets):
            pins = h.pins_of(j) + base
            prefix = f"{int(h.net_costs[j])} " if wn else ""
            f.write(prefix + " ".join(map(str, pins.tolist())) + "\n")
        if wv:
            f.write(" ".join(map(str, h.vertex_weights.tolist())) + "\n")
    finally:
        if close:
            f.close()


def read_patoh(path_or_file) -> Hypergraph:
    """Read a hypergraph from PaToH text format."""
    f, close = _open(path_or_file, "r")
    try:
        tokens = _tokenize(f)
        header = next(tokens.lines).split()
        if len(header) < 4:
            raise ValueError("malformed PaToH header")
        base, nv, nn, npins = (int(t) for t in header[:4])
        flag = int(header[4]) if len(header) > 4 else 0
        wv, wn = bool(flag & 1), bool(flag & 2)
        netlists: list[list[int]] = []
        costs: list[int] = []
        seen = 0
        # PaToH is line-oriented: one net per line (blank = empty net)
        for _ in range(nn):
            parts = [int(t) for t in tokens.net_line().split()]
            if wn:
                costs.append(parts[0])
                parts = parts[1:]
            netlists.append([p - base for p in parts])
            seen += len(parts)
        if seen != npins:
            raise ValueError(f"pin count mismatch: header says {npins}, read {seen}")
        weights = None
        if wv:
            wtoks: list[int] = []
            while len(wtoks) < nv:
                wtoks.extend(int(t) for t in next(tokens.lines).split())
            weights = np.asarray(wtoks[:nv], dtype=INDEX_DTYPE)
        xpins = prefix_from_counts([len(n) for n in netlists])
        pins = (
            np.concatenate([np.asarray(n, dtype=INDEX_DTYPE) for n in netlists])
            if netlists and any(netlists)
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        return Hypergraph(
            nv, xpins, pins,
            vertex_weights=weights,
            net_costs=np.asarray(costs, dtype=INDEX_DTYPE) if wn else None,
        )
    finally:
        if close:
            f.close()


# ----------------------------------------------------------------------
# hMeTiS
# ----------------------------------------------------------------------
def write_hmetis(h: Hypergraph, path_or_file) -> None:
    """Write *h* in hMeTiS text format (1-based pins)."""
    f, close = _open(path_or_file, "w")
    try:
        wv = _nonunit(h.vertex_weights)
        wn = _nonunit(h.net_costs)
        # hMeTiS fmt: ones digit = net costs present, tens digit = vertex
        # weights present (manual §5.1): 1, 10 or 11
        fmt_num = (10 if wv else 0) + (1 if wn else 0)
        header = f"{h.num_nets} {h.num_vertices}"
        if fmt_num:
            header += f" {fmt_num}"
        f.write(header + "\n")
        for j in range(h.num_nets):
            pins = h.pins_of(j) + 1
            prefix = f"{int(h.net_costs[j])} " if wn else ""
            f.write(prefix + " ".join(map(str, pins.tolist())) + "\n")
        if wv:
            for w in h.vertex_weights.tolist():
                f.write(f"{w}\n")
    finally:
        if close:
            f.close()


def read_hmetis(path_or_file) -> Hypergraph:
    """Read a hypergraph from hMeTiS text format."""
    f, close = _open(path_or_file, "r")
    try:
        tokens = _tokenize(f)
        header = next(tokens.lines).split()
        nn, nv = int(header[0]), int(header[1])
        fmt = header[2] if len(header) > 2 else "0"
        wn = fmt in ("1", "11")
        wv = fmt in ("10", "11")
        netlists: list[list[int]] = []
        costs: list[int] = []
        for _ in range(nn):
            parts = [int(t) for t in tokens.net_line().split()]
            if wn:
                costs.append(parts[0])
                parts = parts[1:]
            netlists.append([p - 1 for p in parts])
        weights = None
        if wv:
            weights = np.asarray(
                [int(next(tokens.lines).split()[0]) for _ in range(nv)],
                dtype=INDEX_DTYPE,
            )
        xpins = prefix_from_counts([len(n) for n in netlists])
        pins = (
            np.concatenate([np.asarray(n, dtype=INDEX_DTYPE) for n in netlists])
            if netlists and any(netlists)
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        return Hypergraph(
            nv, xpins, pins,
            vertex_weights=weights,
            net_costs=np.asarray(costs, dtype=INDEX_DTYPE) if wn else None,
        )
    finally:
        if close:
            f.close()


# ----------------------------------------------------------------------
class _TokenStream:
    """Line reader shared by both format parsers.

    ``lines`` skips comments *and* blanks (headers, weight blocks);
    :meth:`net_line` skips only comments — inside the net block a blank
    line is data: it encodes an empty net (a net with zero pins writes as
    an empty line, and swallowing it would shift every following net up
    by one).
    """

    def __init__(self, f: TextIO) -> None:
        self._f = f
        self.lines = self._line_iter()

    def _line_iter(self):
        while True:
            line = self._f.readline()
            if not line:
                return
            s = line.strip()
            if not s or s.startswith("%") or s.startswith("#"):
                continue
            yield s

    def net_line(self) -> str:
        """Next net line; blank means an empty net, comments are skipped."""
        while True:
            line = self._f.readline()
            if not line:
                raise ValueError("unexpected end of file inside net block")
            s = line.strip()
            if s.startswith("%") or s.startswith("#"):
                continue
            return s


def _tokenize(f: TextIO) -> _TokenStream:
    return _TokenStream(f)
