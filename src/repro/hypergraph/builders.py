"""Construction helpers for :class:`~repro.hypergraph.Hypergraph`."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._util import INDEX_DTYPE, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["hypergraph_from_netlists", "hypergraph_from_csr", "validate_hypergraph"]


def hypergraph_from_netlists(
    num_vertices: int,
    netlists: Iterable[Sequence[int]],
    vertex_weights: Sequence[int] | np.ndarray | None = None,
    net_costs: Sequence[int] | np.ndarray | None = None,
    fixed: Sequence[int] | np.ndarray | None = None,
) -> Hypergraph:
    """Build a hypergraph from an iterable of per-net pin lists.

    This is the convenient constructor for tests and small examples; the
    models build CSR arrays directly for speed.

    >>> h = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3]])
    >>> h.num_nets, h.num_pins
    (2, 5)
    """
    netlists = [list(n) for n in netlists]
    counts = [len(n) for n in netlists]
    xpins = prefix_from_counts(counts)
    if netlists:
        pins = np.concatenate([np.asarray(n, dtype=INDEX_DTYPE) for n in netlists]) \
            if any(counts) else np.empty(0, dtype=INDEX_DTYPE)
    else:
        pins = np.empty(0, dtype=INDEX_DTYPE)
    return Hypergraph(
        num_vertices, xpins, pins,
        vertex_weights=vertex_weights, net_costs=net_costs, fixed=fixed,
    )


def hypergraph_from_csr(
    num_vertices: int,
    xpins: np.ndarray,
    pins: np.ndarray,
    vertex_weights: np.ndarray | None = None,
    net_costs: np.ndarray | None = None,
    fixed: np.ndarray | None = None,
    validate: bool = True,
) -> Hypergraph:
    """Build a hypergraph from raw CSR net→pin arrays (zero-copy when valid)."""
    return Hypergraph(
        num_vertices, xpins, pins,
        vertex_weights=vertex_weights, net_costs=net_costs, fixed=fixed,
        validate=validate,
    )


def validate_hypergraph(h: Hypergraph) -> None:
    """Re-run structural validation plus dual-consistency checks.

    Verifies that the vertex→net view is the exact transpose of the net→pin
    view.  Used by property tests and after coarse-hypergraph construction.
    """
    h._check()
    # dual consistency: (net, pin) pairs seen from both sides must agree
    net_of_pin = np.repeat(np.arange(h.num_nets, dtype=INDEX_DTYPE), np.diff(h.xpins))
    fwd = np.stack([net_of_pin, h.pins])
    vtx_of_slot = np.repeat(np.arange(h.num_vertices, dtype=INDEX_DTYPE), np.diff(h.xnets))
    bwd = np.stack([h.vnets, vtx_of_slot])
    fwd_sorted = fwd[:, np.lexsort(fwd)]
    bwd_sorted = bwd[:, np.lexsort(bwd)]
    if fwd_sorted.shape != bwd_sorted.shape or not np.array_equal(fwd_sorted, bwd_sorted):
        raise AssertionError("vertex->net view is not the transpose of net->pin view")
