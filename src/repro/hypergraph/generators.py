"""Synthetic hypergraph generators.

Standalone hypergraph instances for exercising the partitioner outside the
sparse-matrix models: random uniform hypergraphs, planted-partition
instances with known good cuts (for quality regression tests), and the
clique-chain family used in the documentation examples.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng, check_positive, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "random_uniform_hypergraph",
    "planted_partition_hypergraph",
    "clique_chain_hypergraph",
]


def random_uniform_hypergraph(
    num_vertices: int,
    num_nets: int,
    net_size: int,
    weighted: bool = False,
    seed: int | np.random.Generator | None = None,
) -> Hypergraph:
    """Nets drawn uniformly: each net pins ``net_size`` distinct vertices.

    The classic hard instance — no structure to exploit, cuts stay high.
    """
    check_positive("num_vertices", num_vertices)
    if net_size > num_vertices:
        raise ValueError("net_size cannot exceed num_vertices")
    rng = as_rng(seed)
    pins = np.concatenate(
        [
            rng.choice(num_vertices, size=net_size, replace=False)
            for _ in range(num_nets)
        ]
    ) if num_nets else np.empty(0, dtype=INDEX_DTYPE)
    xpins = prefix_from_counts([net_size] * num_nets)
    weights = rng.integers(1, 4, size=num_vertices) if weighted else None
    costs = rng.integers(1, 3, size=num_nets) if weighted else None
    return Hypergraph(
        num_vertices, xpins, pins.astype(INDEX_DTYPE),
        vertex_weights=weights, net_costs=costs,
    )


def planted_partition_hypergraph(
    num_parts: int,
    vertices_per_part: int,
    nets_per_part: int,
    net_size: int,
    cross_nets: int,
    seed: int | np.random.Generator | None = None,
) -> tuple[Hypergraph, np.ndarray, int]:
    """A hypergraph with a planted K-way partition of known cutsize.

    Each part gets ``nets_per_part`` internal nets; ``cross_nets``
    additional nets each span two adjacent parts (one pin on each side plus
    fill within the first).  Returns ``(h, planted_part, planted_cutsize)``
    where ``planted_cutsize`` is the connectivity-minus-one cutsize of the
    planted partition — an upper bound on the optimum the partitioner
    should get close to.
    """
    check_positive("num_parts", num_parts)
    check_positive("vertices_per_part", vertices_per_part)
    if net_size > vertices_per_part:
        raise ValueError("net_size cannot exceed vertices_per_part")
    rng = as_rng(seed)
    nv = num_parts * vertices_per_part
    netlists: list[np.ndarray] = []
    for p in range(num_parts):
        base = p * vertices_per_part
        for _ in range(nets_per_part):
            netlists.append(
                base + rng.choice(vertices_per_part, size=net_size, replace=False)
            )
    for i in range(cross_nets):
        p = i % max(num_parts - 1, 1)
        a = p * vertices_per_part + int(rng.integers(vertices_per_part))
        b = (p + 1) * vertices_per_part + int(rng.integers(vertices_per_part))
        netlists.append(np.asarray([a, b]))
    counts = [len(nl) for nl in netlists]
    xpins = prefix_from_counts(counts)
    pins = (
        np.concatenate(netlists).astype(INDEX_DTYPE)
        if netlists
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    h = Hypergraph(nv, xpins, pins)
    planted = np.repeat(np.arange(num_parts, dtype=INDEX_DTYPE), vertices_per_part)
    cut = cross_nets if num_parts > 1 else 0
    return h, planted, cut


def clique_chain_hypergraph(
    num_cliques: int, clique_size: int
) -> tuple[Hypergraph, int]:
    """A chain of clique nets joined by 2-pin link nets.

    Splitting the chain into ``num_cliques`` parts cuts only link nets, so
    the optimal K-way cutsize (K = num_cliques) is ``num_cliques - 1``.
    Returns ``(h, optimal_cutsize_for_k_equal_cliques)``.
    """
    check_positive("num_cliques", num_cliques)
    check_positive("clique_size", clique_size)
    nv = num_cliques * clique_size
    netlists: list[list[int]] = []
    for b in range(num_cliques):
        base = b * clique_size
        netlists.append(list(range(base, base + clique_size)))
        if b + 1 < num_cliques:
            netlists.append([base + clique_size - 1, base + clique_size])
    counts = [len(nl) for nl in netlists]
    xpins = prefix_from_counts(counts)
    pins = np.concatenate([np.asarray(nl, dtype=INDEX_DTYPE) for nl in netlists])
    return Hypergraph(nv, xpins, pins), num_cliques - 1
