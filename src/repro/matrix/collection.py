"""The paper's 14-matrix test set, reproduced structurally.

Table 1 of the paper lists the matrices below with their sizes and degree
statistics.  The original files (Harwell–Boeing, netlib LP, UF collection)
are not available offline, so each entry is synthesized by the structural
generator matching its application class, calibrated to the paper's
statistics (see DESIGN.md §4 for the substitution rationale).

Every entry accepts a ``scale`` factor: ``scale=1.0`` reproduces the
original dimensions and nonzero counts; smaller values shrink rows and
nonzeros proportionally (dense-row/column extents shrink with the matrix so
the *structure class* is preserved).  Generation is deterministic in
``(name, scale, seed)``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.matrix import generators as g
from repro.matrix.stats import MatrixStats

__all__ = ["COLLECTION", "collection_names", "load_collection_matrix", "paper_table1"]


@dataclass(frozen=True)
class CollectionEntry:
    """One matrix of the paper's test set."""

    name: str
    description: str
    #: statistics reported in the paper's Table 1
    paper: MatrixStats
    #: generator: (scale, seed) -> csr_matrix
    build: Callable[[float, int], sp.csr_matrix]


def _s(x: float, scale: float, lo: int = 1) -> int:
    """Scale an integer dimension, keeping it at least *lo*."""
    return max(int(round(x * scale)), lo)


def _paper(name: str, rows: int, nnz: int, dmin: int, dmax: int, avg: float) -> MatrixStats:
    return MatrixStats(
        name=name, rows=rows, cols=rows, nnz=nnz,
        min_per_rowcol=dmin, max_per_rowcol=dmax, avg_per_rowcol=avg, nnz_diag=-1,
    )


def _sherman3(scale: float, seed: int) -> sp.csr_matrix:
    # 35 x 11 x 13 reservoir grid; keep_prob calibrated so that
    # nnz = n + 2 * keep_prob * (#grid edges) matches 20033 at scale 1
    nx, ny, nz = _s(35, scale ** (1 / 3), 2), _s(11, scale ** (1 / 3), 2), _s(13, scale ** (1 / 3), 2)
    return g.stencil_3d(nx, ny, nz, keep_prob=0.536, diag_prob=1.0, seed=seed)


def _bcspwr10(scale: float, seed: int) -> sp.csr_matrix:
    return g.geometric_graph_matrix(
        _s(5300, scale), avg_degree=3.12, max_degree=13, seed=seed
    )


def _lp(
    rows: int,
    nnz: int,
    dmax: int,
    dmin: int,
    alpha: float,
    block_size: int = 32,
    coupling: float = 0.35,
):
    def build(scale: float, seed: int) -> sp.csr_matrix:
        n = _s(rows, scale, 16)
        return g.skewed_lp_matrix(
            n,
            _s(nnz, scale, 32),
            max_degree=min(_s(dmax, scale, dmin + 4), n - 1),
            min_degree=dmin,
            alpha=alpha,
            block_size=block_size,
            coupling=coupling,
            seed=seed,
        )

    return build


def _pltexp(scale: float, seed: int) -> sp.csr_matrix:
    return g.staircase_matrix(
        n_stages=113,
        rows_per_stage=_s(238, scale, 4),
        avg_row_nnz=10.03,
        min_row_nnz=5,
        coupling=0.35,
        col_skew=2.0,
        seed=seed,
    )


def _vibrobox(scale: float, seed: int) -> sp.csr_matrix:
    return g.banded_fem_matrix(
        _s(12328, scale, 64),
        bandwidth=_s(400, scale, 16),
        avg_degree=27.81,
        min_degree=9,
        max_degree=121,
        seed=seed,
    )


def _finan512(scale: float, seed: int) -> sp.csr_matrix:
    return g.block_arrow_matrix(
        n_blocks=_s(512, scale, 8),
        block_size=145,
        border=_s(512, scale, 8),
        intra_degree=3.3,
        border_degree_min=8,
        border_degree_max=_s(1448, scale, 32),
        seed=seed,
    )


#: name -> entry; insertion order follows Table 1 (increasing nonzeros)
COLLECTION: dict[str, CollectionEntry] = {
    e.name: e
    for e in [
        CollectionEntry(
            "sherman3", "oil reservoir simulation, 3D finite differences",
            _paper("sherman3", 5005, 20033, 1, 7, 4.00), _sherman3,
        ),
        CollectionEntry(
            "bcspwr10", "eastern US power network",
            _paper("bcspwr10", 5300, 21842, 2, 14, 4.12), _bcspwr10,
        ),
        CollectionEntry(
            "ken-11", "multicommodity network flow LP (KORBX)",
            _paper("ken-11", 14694, 82454, 2, 243, 5.61),
            _lp(14694, 82454, 243, 2, 2.3, block_size=24, coupling=0.15),
        ),
        CollectionEntry(
            "nl", "linear programming problem",
            _paper("nl", 7039, 105089, 1, 361, 14.93),
            _lp(7039, 105089, 361, 1, 1.45, block_size=48, coupling=0.40),
        ),
        CollectionEntry(
            "ken-13", "multicommodity network flow LP (KORBX)",
            _paper("ken-13", 28632, 161804, 2, 339, 5.65),
            _lp(28632, 161804, 339, 2, 2.3, block_size=24, coupling=0.12),
        ),
        CollectionEntry(
            "cq9", "linear programming problem (Gondzio set)",
            _paper("cq9", 9278, 221590, 1, 702, 23.88),
            _lp(9278, 221590, 702, 1, 1.35, block_size=64, coupling=0.35),
        ),
        CollectionEntry(
            "co9", "linear programming problem (Gondzio set)",
            _paper("co9", 10789, 249205, 1, 707, 23.10),
            _lp(10789, 249205, 707, 1, 1.35, block_size=64, coupling=0.35),
        ),
        CollectionEntry(
            "pltexpA4-6", "multistage stochastic planning LP (staircase)",
            _paper("pltexpA4-6", 26894, 269736, 5, 204, 10.03), _pltexp,
        ),
        CollectionEntry(
            "vibrobox", "vibro-acoustic structure FEM",
            _paper("vibrobox", 12328, 342828, 9, 121, 27.81), _vibrobox,
        ),
        CollectionEntry(
            "cre-d", "airline crew scheduling LP (KORBX)",
            _paper("cre-d", 8926, 372266, 1, 845, 41.71),
            _lp(8926, 372266, 845, 1, 1.25, block_size=96, coupling=0.35),
        ),
        CollectionEntry(
            "cre-b", "airline crew scheduling LP (KORBX)",
            _paper("cre-b", 9648, 398806, 1, 904, 41.34),
            _lp(9648, 398806, 904, 1, 1.25, block_size=96, coupling=0.35),
        ),
        CollectionEntry(
            "world", "world trade LP model",
            _paper("world", 34506, 582064, 1, 972, 16.87),
            _lp(34506, 582064, 972, 1, 1.4, block_size=48, coupling=0.30),
        ),
        CollectionEntry(
            "mod2", "LP model (Kennington set)",
            _paper("mod2", 34774, 604910, 1, 941, 17.40),
            _lp(34774, 604910, 941, 1, 1.4, block_size=48, coupling=0.30),
        ),
        CollectionEntry(
            "finan512", "portfolio optimization, block-arrow structure",
            _paper("finan512", 74752, 615774, 3, 1449, 8.24), _finan512,
        ),
    ]
}


def collection_names() -> list[str]:
    """Matrix names in the paper's Table 1 order."""
    return list(COLLECTION.keys())


def load_collection_matrix(
    name: str, scale: float = 1.0, seed: int = 0
) -> sp.csr_matrix:
    """Generate the named test matrix at the requested scale.

    Deterministic: the same ``(name, scale, seed)`` always returns the same
    matrix.
    """
    if name not in COLLECTION:
        raise KeyError(f"unknown collection matrix {name!r}; see collection_names()")
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    # decorrelate the per-matrix streams while keeping determinism
    # (zlib.crc32 is stable across processes, unlike built-in str hashing)
    name_key = zlib.crc32(name.encode("utf-8"))
    mixed_seed = int(np.random.SeedSequence([seed, name_key]).generate_state(1)[0])
    return COLLECTION[name].build(scale, mixed_seed)


def paper_table1() -> list[MatrixStats]:
    """The statistics of the paper's Table 1, in order."""
    return [e.paper for e in COLLECTION.values()]
