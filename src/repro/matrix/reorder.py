"""Sparse-matrix reordering utilities.

The fine-grain line of work (Çatalyürek's thesis [2] covers "Partitioning
and Reordering") treats permutations as first-class: decompositions are
often *visualized* by permuting the matrix so each processor's rows/columns
are contiguous, and bandwidth-reducing orders are the classical counterpoint
to partition-based ones.  This module provides:

* :func:`reverse_cuthill_mckee` — classical RCM bandwidth reduction on the
  symmetrized pattern, from scratch (BFS from a pseudo-peripheral vertex,
  neighbours by increasing degree, order reversed);
* :func:`random_symmetric_permutation` — scrambles any latent structure
  (used by tests to show partitioners re-discover hidden blocks);
* :func:`partition_block_order` — the permutation that makes a 1D
  partition's parts contiguous, exposing the decomposition's block
  structure;
* :func:`bandwidth` and :func:`profile` — the quality metrics RCM targets.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, as_rng

__all__ = [
    "bandwidth",
    "profile",
    "reverse_cuthill_mckee",
    "random_symmetric_permutation",
    "partition_block_order",
    "apply_symmetric_permutation",
]


def _sym_adjacency(a: sp.spmatrix) -> sp.csr_matrix:
    a = sp.csr_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("reordering requires a square matrix")
    pattern = sp.csr_matrix(
        (np.ones(a.nnz, dtype=np.int8), a.indices.copy(), a.indptr.copy()),
        shape=a.shape,
    )
    sym = pattern + pattern.T
    sym = sp.csr_matrix(sym)
    sym.setdiag(0)
    sym.eliminate_zeros()
    sym.sort_indices()
    return sym


def bandwidth(a: sp.spmatrix) -> int:
    """Maximum ``|i - j|`` over the stored nonzeros."""
    coo = sp.coo_matrix(a)
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.row - coo.col).max())


def profile(a: sp.spmatrix) -> int:
    """Sum over rows of the distance from the leftmost nonzero to the
    diagonal (the skyline storage cost)."""
    csr = sp.csr_matrix(a)
    total = 0
    for i in range(csr.shape[0]):
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        if hi > lo:
            total += max(i - int(csr.indices[lo:hi].min()), 0)
    return total


def _pseudo_peripheral(adj: sp.csr_matrix, start: int) -> int:
    """George–Liu style: repeat BFS from the farthest vertex until the
    eccentricity stops growing."""
    n = adj.shape[0]
    current = start
    last_ecc = -1
    for _ in range(8):  # converges in a few rounds
        levels = np.full(n, -1, dtype=INDEX_DTYPE)
        levels[current] = 0
        frontier = [current]
        ecc = 0
        while frontier:
            nxt = []
            for v in frontier:
                for u in adj.indices[adj.indptr[v] : adj.indptr[v + 1]]:
                    if levels[u] < 0:
                        levels[u] = levels[v] + 1
                        nxt.append(int(u))
            if nxt:
                ecc += 1
            frontier = nxt
        if ecc <= last_ecc:
            break
        last_ecc = ecc
        far = np.flatnonzero(levels == ecc)
        if len(far) == 0:
            break
        # pick the farthest vertex of minimum degree
        degs = np.diff(adj.indptr)[far]
        current = int(far[np.argmin(degs)])
    return current


def reverse_cuthill_mckee(a: sp.spmatrix) -> np.ndarray:
    """RCM ordering; returns the permutation ``perm`` such that
    ``a[perm][:, perm]`` has (usually much) smaller bandwidth.

    Handles disconnected patterns by restarting from the lowest-degree
    unvisited vertex.
    """
    adj = _sym_adjacency(a)
    n = adj.shape[0]
    degs = np.diff(adj.indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    while len(order) < n:
        unvisited = np.flatnonzero(~visited)
        seed = int(unvisited[np.argmin(degs[unvisited])])
        seed = _pseudo_peripheral_component(adj, seed, visited)
        queue = [seed]
        visited[seed] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = adj.indices[adj.indptr[v] : adj.indptr[v + 1]]
            fresh = [int(u) for u in nbrs if not visited[u]]
            fresh.sort(key=lambda u: degs[u])
            for u in fresh:
                visited[u] = True
            queue.extend(fresh)
    return np.asarray(order[::-1], dtype=INDEX_DTYPE)


def _pseudo_peripheral_component(
    adj: sp.csr_matrix, seed: int, visited: np.ndarray
) -> int:
    """Pseudo-peripheral start restricted to the seed's unvisited component."""
    # the plain helper ignores `visited` because components never overlap
    return _pseudo_peripheral(adj, seed)


def random_symmetric_permutation(
    n: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """A uniformly random permutation of ``range(n)``."""
    return as_rng(seed).permutation(n).astype(INDEX_DTYPE)


def partition_block_order(part: np.ndarray, k: int) -> np.ndarray:
    """Permutation grouping indices by part id (stable within a part).

    Applying it symmetrically to a 1D-decomposed matrix makes every
    processor's rows/columns contiguous — the standard way of *looking at*
    a decomposition.
    """
    part = np.asarray(part)
    if len(part) and (part.min() < 0 or part.max() >= k):
        raise ValueError("part id out of range")
    return np.argsort(part, kind="stable").astype(INDEX_DTYPE)


def apply_symmetric_permutation(a: sp.spmatrix, perm: np.ndarray) -> sp.csr_matrix:
    """Return ``a[perm][:, perm]`` as CSR."""
    a = sp.csr_matrix(a)
    if len(perm) != a.shape[0] or a.shape[0] != a.shape[1]:
        raise ValueError("permutation length must match a square matrix")
    return sp.csr_matrix(a[perm][:, perm])
