"""Matrix Market I/O, implemented from scratch.

Supports the coordinate format with ``real``, ``integer`` and ``pattern``
fields and ``general``, ``symmetric`` and ``skew-symmetric`` symmetries —
enough to read every matrix in the paper's test set from the NIST / UF
collections when the files are available, and to round-trip matrices
produced by :mod:`repro.matrix.generators`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELDS = {"real", "integer", "pattern", "complex"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}


def read_matrix_market(path_or_file) -> sp.csr_matrix:
    """Parse a Matrix Market ``.mtx`` file into CSR.

    Symmetric / skew-symmetric storage is expanded to the full pattern.
    Complex fields are rejected (the library is real-valued throughout).
    """
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "r")
        close = True
    else:
        f = path_or_file
    try:
        header = f.readline().strip().split()
        if (
            len(header) != 5
            or header[0] != "%%MatrixMarket"
            or header[1].lower() != "matrix"
            or header[2].lower() != "coordinate"
        ):
            raise ValueError("only MatrixMarket coordinate format is supported")
        field = header[3].lower()
        symmetry = header[4].lower()
        if field not in _FIELDS or field == "complex":
            raise ValueError(f"unsupported field {field!r}")
        if symmetry not in _SYMMETRIES or symmetry == "hermitian":
            raise ValueError(f"unsupported symmetry {symmetry!r}")

        line = f.readline()
        while line.startswith("%") or not line.strip():
            line = f.readline()
        nrows, ncols, nnz = (int(t) for t in line.split())

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        k = 0
        for line in f:
            s = line.strip()
            if not s or s.startswith("%"):
                continue
            parts = s.split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = 1.0 if field == "pattern" else float(parts[2])
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, read {k}")

        if symmetry in ("symmetric", "skew-symmetric"):
            off = rows != cols
            sign = -1.0 if symmetry == "skew-symmetric" else 1.0
            new_rows = np.concatenate([rows, cols[off]])
            new_cols = np.concatenate([cols, rows[off]])
            vals = np.concatenate([vals, sign * vals[off]])
            rows, cols = new_rows, new_cols
        a = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
        return a.tocsr()
    finally:
        if close:
            f.close()


def write_matrix_market(
    a: sp.spmatrix,
    path_or_file,
    field: str = "real",
    comment: str = "",
) -> None:
    """Write *a* as a MatrixMarket ``coordinate`` file with ``general``
    symmetry.

    ``field='pattern'`` writes only the sparsity structure.
    """
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    coo = sp.coo_matrix(a)
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "w")
        close = True
    else:
        f = path_or_file
    try:
        f.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                f.write(f"% {line}\n")
        f.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        if field == "pattern":
            for i, j in zip(coo.row, coo.col):
                f.write(f"{i + 1} {j + 1}\n")
        elif field == "integer":
            for i, j, v in zip(coo.row, coo.col, coo.data):
                f.write(f"{i + 1} {j + 1} {int(v)}\n")
        else:
            for i, j, v in zip(coo.row, coo.col, coo.data):
                f.write(f"{i + 1} {j + 1} {float(v)!r}\n")
    finally:
        if close:
            f.close()
