"""Matrix Market I/O, implemented from scratch.

Supports the coordinate format with ``real``, ``integer`` and ``pattern``
fields and ``general``, ``symmetric`` and ``skew-symmetric`` symmetries —
enough to read every matrix in the paper's test set from the NIST / UF
collections when the files are available, and to round-trip matrices
produced by :mod:`repro.matrix.generators`.

Every ingestion defect — malformed header, unparseable entry, index out of
range, non-finite value, duplicate entry, truncated file — raises one
exception type, :class:`repro.errors.ReproFormatError`, carrying the
source name and 1-based line number, so a failing multi-hour sweep names
the offending file and line instead of dying with a bare ``IndexError``
deep inside scipy.  ``repair=True`` downgrades the recoverable defects
(out-of-range / non-finite entries are dropped, duplicates are summed) to
a single warning.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import ReproFormatError

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELDS = {"real", "integer", "pattern", "complex"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}


def read_matrix_market(path_or_file, repair: bool = False) -> sp.csr_matrix:
    """Parse a Matrix Market ``.mtx`` file into CSR.

    Symmetric / skew-symmetric storage is expanded to the full pattern.
    Complex fields are rejected (the library is real-valued throughout).
    Malformed input raises :class:`~repro.errors.ReproFormatError` with
    file/line context; ``repair=True`` instead drops out-of-range and
    non-finite entries and sums duplicates, with one summary warning.
    """
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "r")
        close = True
        source = str(path_or_file)
    else:
        f = path_or_file
        source = getattr(f, "name", None) or "<stream>"
    try:
        lineno = 1
        header = f.readline().strip().split()
        if (
            len(header) != 5
            or header[0] != "%%MatrixMarket"
            or header[1].lower() != "matrix"
            or header[2].lower() != "coordinate"
        ):
            raise ReproFormatError(
                "only MatrixMarket coordinate format is supported",
                source=source, line=lineno,
            )
        field = header[3].lower()
        symmetry = header[4].lower()
        if field not in _FIELDS or field == "complex":
            raise ReproFormatError(
                f"unsupported field {field!r}", source=source, line=lineno
            )
        if symmetry not in _SYMMETRIES or symmetry == "hermitian":
            raise ReproFormatError(
                f"unsupported symmetry {symmetry!r}", source=source, line=lineno
            )

        line = f.readline()
        lineno += 1
        while line.startswith("%") or not line.strip():
            if not line:
                raise ReproFormatError(
                    "missing size line", source=source, line=lineno
                )
            line = f.readline()
            lineno += 1
        try:
            nrows, ncols, nnz = (int(t) for t in line.split())
        except ValueError:
            raise ReproFormatError(
                f"malformed size line {line.strip()!r}",
                source=source, line=lineno,
            ) from None
        if nrows < 0 or ncols < 0 or nnz < 0:
            raise ReproFormatError(
                "size line must be non-negative", source=source, line=lineno
            )

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        k = 0
        dropped = 0
        need = 2 if field == "pattern" else 3
        for line in f:
            lineno += 1
            s = line.strip()
            if not s or s.startswith("%"):
                continue
            if k + dropped >= nnz:
                raise ReproFormatError(
                    f"more than the declared {nnz} entries",
                    source=source, line=lineno,
                )
            parts = s.split()
            if len(parts) < need:
                raise ReproFormatError(
                    f"entry has {len(parts)} tokens, expected {need}",
                    source=source, line=lineno,
                )
            try:
                i = int(parts[0]) - 1
                j = int(parts[1]) - 1
                v = 1.0 if field == "pattern" else float(parts[2])
            except ValueError:
                raise ReproFormatError(
                    f"unparseable entry {s!r}", source=source, line=lineno
                ) from None
            if not (0 <= i < nrows and 0 <= j < ncols):
                if not repair:
                    raise ReproFormatError(
                        f"index ({i + 1}, {j + 1}) out of range for "
                        f"{nrows}x{ncols}",
                        source=source, line=lineno,
                    )
                dropped += 1
                continue
            if not np.isfinite(v):
                if not repair:
                    raise ReproFormatError(
                        f"non-finite value {parts[2]!r} at ({i + 1}, {j + 1})",
                        source=source, line=lineno,
                    )
                dropped += 1
                continue
            rows[k], cols[k], vals[k] = i, j, v
            k += 1
        if k + dropped != nnz:
            # truncation is not repairable: data is missing, not malformed
            raise ReproFormatError(
                f"expected {nnz} entries, read {k + dropped}", source=source
            )
        rows, cols, vals = rows[:k], cols[:k], vals[:k]

        if k:
            # duplicate (i, j) pairs: an error in strict mode (the format
            # forbids them), summed — standard assembly semantics — under
            # repair
            order = np.lexsort((cols, rows))
            ri, ci = rows[order], cols[order]
            dup = (ri[1:] == ri[:-1]) & (ci[1:] == ci[:-1])
            n_dup = int(dup.sum())
            if n_dup:
                if not repair:
                    first = int(np.flatnonzero(dup)[0]) + 1
                    raise ReproFormatError(
                        f"{n_dup} duplicate entries (first at row "
                        f"{ri[first] + 1}, col {ci[first] + 1})",
                        source=source,
                    )
                dropped += n_dup

        if dropped:
            warnings.warn(
                f"{source}: repaired {dropped} defective entries "
                "(out-of-range/non-finite dropped, duplicates summed)",
                stacklevel=2,
            )

        if symmetry in ("symmetric", "skew-symmetric"):
            off = rows != cols
            sign = -1.0 if symmetry == "skew-symmetric" else 1.0
            new_rows = np.concatenate([rows, cols[off]])
            new_cols = np.concatenate([cols, rows[off]])
            vals = np.concatenate([vals, sign * vals[off]])
            rows, cols = new_rows, new_cols
        a = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
        return a.tocsr()
    finally:
        if close:
            f.close()


def write_matrix_market(
    a: sp.spmatrix,
    path_or_file,
    field: str = "real",
    comment: str = "",
) -> None:
    """Write *a* as a MatrixMarket ``coordinate`` file with ``general``
    symmetry.

    ``field='pattern'`` writes only the sparsity structure.
    """
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    coo = sp.coo_matrix(a)
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "w")
        close = True
    else:
        f = path_or_file
    try:
        f.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                f.write(f"% {line}\n")
        f.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        if field == "pattern":
            for i, j in zip(coo.row, coo.col):
                f.write(f"{i + 1} {j + 1}\n")
        elif field == "integer":
            for i, j, v in zip(coo.row, coo.col, coo.data):
                f.write(f"{i + 1} {j + 1} {int(v)}\n")
        else:
            for i, j, v in zip(coo.row, coo.col, coo.data):
                f.write(f"{i + 1} {j + 1} {float(v)!r}\n")
    finally:
        if close:
            f.close()
