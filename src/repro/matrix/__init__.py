"""Sparse-matrix substrate.

Thin, explicit layer over ``scipy.sparse``:

* :mod:`~repro.matrix.io` — Matrix Market reader/writer (no scipy.io);
* :mod:`~repro.matrix.stats` — the structural statistics of Table 1;
* :mod:`~repro.matrix.generators` — parameterized structural families
  (stencil, geometric/power grid, skewed LP, staircase, block-arrow, banded
  FEM) used to synthesize the paper's test set offline;
* :mod:`~repro.matrix.collection` — the 14 named test matrices of Table 1,
  reproduced structurally at configurable scale.
"""

from repro.matrix.stats import MatrixStats, matrix_stats
from repro.matrix.io import read_matrix_market, write_matrix_market
from repro.matrix.harwell_boeing import read_harwell_boeing, write_harwell_boeing
from repro.matrix.generators import (
    stencil_3d,
    geometric_graph_matrix,
    skewed_lp_matrix,
    staircase_matrix,
    block_arrow_matrix,
    banded_fem_matrix,
)
from repro.matrix.collection import (
    COLLECTION,
    collection_names,
    load_collection_matrix,
    paper_table1,
)

__all__ = [
    "MatrixStats",
    "matrix_stats",
    "read_matrix_market",
    "write_matrix_market",
    "read_harwell_boeing",
    "write_harwell_boeing",
    "stencil_3d",
    "geometric_graph_matrix",
    "skewed_lp_matrix",
    "staircase_matrix",
    "block_arrow_matrix",
    "banded_fem_matrix",
    "COLLECTION",
    "collection_names",
    "load_collection_matrix",
    "paper_table1",
]
