"""Structural statistics of a sparse matrix — the columns of Table 1.

Table 1 of the paper lists, per matrix: number of rows/cols (all test
matrices are square), total number of nonzeros, and the min / max / average
number of nonzeros per row/col.  ``avg`` in the paper is exactly
``nnz / rows``; ``min`` and ``max`` are taken over both the row counts and
the column counts (the matrices are structurally nonsymmetric, so the two
directions differ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["MatrixStats", "matrix_stats"]


@dataclass(frozen=True)
class MatrixStats:
    """Structural summary used throughout the benchmark harness."""

    name: str
    rows: int
    cols: int
    nnz: int
    min_per_rowcol: int
    max_per_rowcol: int
    avg_per_rowcol: float
    nnz_diag: int

    def table1_row(self) -> str:
        """Format as a row of the paper's Table 1."""
        return (
            f"{self.name:<12} {self.rows:>9} {self.nnz:>9} "
            f"{self.min_per_rowcol:>4} {self.max_per_rowcol:>5} "
            f"{self.avg_per_rowcol:>7.2f}"
        )


def matrix_stats(a: sp.spmatrix, name: str = "") -> MatrixStats:
    """Compute :class:`MatrixStats` for a (square or rectangular) matrix.

    Structural zeros that are explicitly stored are eliminated first so the
    counts reflect the true sparsity pattern.
    """
    a = sp.csr_matrix(a)
    a.eliminate_zeros()
    rows, cols = a.shape
    row_counts = np.diff(a.indptr)
    col_counts = np.bincount(a.indices, minlength=cols)
    # rows/cols with zero entries still count toward the minimum: an empty
    # row genuinely has 0 nonzeros.  The paper's matrices have min >= 1.
    if rows and cols:
        min_rc = int(min(row_counts.min(), col_counts.min()))
        max_rc = int(max(row_counts.max(), col_counts.max()))
    else:
        min_rc = max_rc = 0
    avg = a.nnz / rows if rows else 0.0
    ndiag = int(np.count_nonzero(a.diagonal())) if rows == cols else 0
    return MatrixStats(
        name=name,
        rows=rows,
        cols=cols,
        nnz=int(a.nnz),
        min_per_rowcol=min_rc,
        max_per_rowcol=max_rc,
        avg_per_rowcol=float(avg),
        nnz_diag=ndiag,
    )
