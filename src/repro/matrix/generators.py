"""Parameterized structural families of sparse matrices.

The paper evaluates on 14 matrices from the Harwell–Boeing, netlib LP and UF
collections.  Those files are not redistributable here, so this module
provides deterministic generators for the *structural classes* the test set
covers.  What drives the relative behaviour of the decomposition models is
the sparsity structure — bandedness, dense rows/columns, block coupling,
degree skew — and each generator reproduces one such class with tunable
statistics (size, nonzero count, min/max degree).

All generators:

* are deterministic given ``seed``;
* return ``scipy.sparse.csr_matrix`` with strictly positive values (no
  accidental explicit zeros);
* are square (the paper's kernel is ``y = A x`` with conformal x/y
  distributions, which requires square matrices);
* do **not** force a full diagonal — the fine-grain model's dummy-vertex
  mechanism for zero diagonals (§3 last paragraph) must see real work.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from repro._util import as_rng, check_positive

__all__ = [
    "stencil_3d",
    "geometric_graph_matrix",
    "skewed_lp_matrix",
    "staircase_matrix",
    "block_arrow_matrix",
    "banded_fem_matrix",
]


def _finalize(
    rows: np.ndarray, cols: np.ndarray, n: int, rng: np.random.Generator
) -> sp.csr_matrix:
    """Deduplicate (row, col) pairs and attach positive random values.

    Every generated matrix is guaranteed to have at least one nonzero in
    every row and every column (as all of the paper's test matrices do): a
    diagonal entry is inserted for any row or column left empty by the
    random sampling.
    """
    key = rows * n + cols
    uniq = np.unique(key)
    r = uniq // n
    c = uniq % n
    row_empty = np.ones(n, dtype=bool)
    row_empty[r] = False
    col_empty = np.ones(n, dtype=bool)
    col_empty[c] = False
    patch = np.flatnonzero(row_empty | col_empty)
    if len(patch):
        r = np.concatenate([r, patch])
        c = np.concatenate([c, patch])
        key = r * n + c
        uniq = np.unique(key)
        r = uniq // n
        c = uniq % n
    vals = rng.uniform(0.1, 1.0, size=len(uniq))
    return sp.csr_matrix((vals, (r, c)), shape=(n, n))


def stencil_3d(
    nx: int,
    ny: int,
    nz: int,
    keep_prob: float = 1.0,
    diag_prob: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> sp.csr_matrix:
    """7-point finite-difference stencil on an ``nx x ny x nz`` grid.

    ``keep_prob`` randomly removes off-diagonal couples (symmetrically), as
    happens in reservoir models like *sherman3* where inactive cells thin the
    stencil.  ``diag_prob`` keeps each diagonal entry with that probability.
    """
    check_positive("nx", nx)
    check_positive("ny", ny)
    check_positive("nz", nz)
    rng = as_rng(seed)
    n = nx * ny * nz
    idx = np.arange(n)
    iz = idx % nz
    iy = (idx // nz) % ny
    ix = idx // (ny * nz)

    rows_list = []
    cols_list = []
    # neighbours in +x, +y, +z; the symmetric partner is added explicitly
    for mask, offset in (
        (ix < nx - 1, ny * nz),
        (iy < ny - 1, nz),
        (iz < nz - 1, 1),
    ):
        src = idx[mask]
        dst = src + offset
        keep = rng.random(len(src)) < keep_prob
        rows_list.append(src[keep])
        cols_list.append(dst[keep])
        rows_list.append(dst[keep])
        cols_list.append(src[keep])
    dmask = rng.random(n) < diag_prob
    rows_list.append(idx[dmask])
    cols_list.append(idx[dmask])
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _finalize(rows, cols, n, rng)


def geometric_graph_matrix(
    n: int,
    avg_degree: float = 4.0,
    max_degree: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> sp.csr_matrix:
    """Random geometric graph adjacency + diagonal — a power-grid analogue.

    Points are placed uniformly in the unit square and connected within a
    radius chosen so the expected off-diagonal degree matches
    ``avg_degree``.  The spatial locality gives the low, nearly uniform
    degrees and good separators characteristic of *bcspwr10*.
    """
    check_positive("n", n)
    check_positive("avg_degree", avg_degree)
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    # expected neighbours within radius r: n * pi * r^2 (ignoring borders)
    radius = np.sqrt(avg_degree / (np.pi * n))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if max_degree is not None and len(pairs):
        deg = np.bincount(pairs.ravel(), minlength=n)
        # drop pairs touching over-full vertices, highest-degree first; one
        # pass is enough for the gentle caps used by the collection
        over = deg > max_degree
        keep = ~(over[pairs[:, 0]] | over[pairs[:, 1]])
        pairs = pairs[keep]
    rows = np.concatenate([pairs[:, 0], pairs[:, 1], np.arange(n)])
    cols = np.concatenate([pairs[:, 1], pairs[:, 0], np.arange(n)])
    return _finalize(rows, cols, n, rng)


def _powerlaw_degrees(
    n: int,
    nnz: int,
    dmin: int,
    dmax: int,
    alpha: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Degrees in ``[dmin, dmax]`` summing (approximately) to *nnz* with a
    power-law tail ``P(d) ~ d^-alpha``."""
    support = np.arange(dmin, dmax + 1, dtype=np.float64)
    probs = support ** (-alpha)
    probs /= probs.sum()
    deg = rng.choice(support.astype(np.int64), size=n, p=probs)
    # rescale towards the target total while respecting the bounds
    total = deg.sum()
    if total > 0:
        scaled = np.clip(np.round(deg * (nnz / total)), dmin, dmax).astype(np.int64)
        deg = scaled
    # pin a couple of entries at the extreme so the generated max degree
    # matches the calibration target instead of being softened by rescaling
    if n >= 4 and dmax > dmin:
        deg[rng.choice(n, size=2, replace=False)] = dmax
    # fine-tune the sum by incrementing/decrementing random entries
    diff = int(nnz - deg.sum())
    idx = rng.permutation(n)
    step = 1 if diff > 0 else -1
    i = 0
    while diff != 0 and i < 4 * n:
        v = idx[i % n]
        nd = deg[v] + step
        if dmin <= nd <= dmax:
            deg[v] = nd
            diff -= step
        i += 1
    return deg


def skewed_lp_matrix(
    n: int,
    nnz: int,
    max_degree: int,
    min_degree: int = 1,
    alpha: float = 1.8,
    block_size: int = 32,
    branching: int = 4,
    coupling: float = 0.35,
    seed: int | np.random.Generator | None = None,
) -> sp.csr_matrix:
    """Square matrix with power-law degrees and *hierarchical* block
    locality.

    This is the structural class of the netlib LP constraint matrices in
    the test set (*nl*, *cq9*, *co9*, *cre-b*, *cre-d*, *mod2*, *world*,
    *ken-11*, *ken-13*): most rows/columns have a handful of nonzeros, a
    few are very dense (``max_degree`` up to ~10% of n) — and, crucially,
    the constraints factor into nearly independent commodity / scenario /
    period blocks *nested at several granularities*.  A pure configuration
    model would erase that locality — and with it everything the paper's
    partitioners exploit — so the degree-matched pairing is planted on a
    block hierarchy: aligned row/column blocks of ``block_size`` at the
    finest level, merged by ``branching`` per level up to the whole matrix.
    Each entry escapes to the next-coarser level with probability
    ``coupling``, giving scale-invariant locality (the hierarchy deepens
    with n rather than the blocks dilating).

    Both row and column degree sequences follow the truncated power law,
    so the dense rows/columns of the real LPs are reproduced as well.
    """
    check_positive("n", n)
    check_positive("nnz", nnz)
    check_positive("block_size", block_size)
    if max_degree >= n:
        raise ValueError("max_degree must be < n")
    if not (0 <= coupling <= 1):
        raise ValueError("coupling must be in [0, 1]")
    if branching < 2:
        raise ValueError("branching must be >= 2")
    rng = as_rng(seed)
    row_deg = _powerlaw_degrees(n, nnz, min_degree, max_degree, alpha, rng)
    col_deg = _powerlaw_degrees(n, nnz, min_degree, max_degree, alpha, rng)
    row_stubs = np.repeat(np.arange(n), row_deg)
    col_stubs = np.sort(np.repeat(np.arange(n), col_deg))

    # level widths: block_size, block_size*branching, ..., then global
    widths = []
    w = int(block_size)
    while w < n:
        widths.append(w)
        w *= int(branching)
    widths.append(n)  # the global level
    n_levels = len(widths)
    widths_arr = np.asarray(widths, dtype=np.int64)

    # a vertex of degree d cannot realize d distinct partners inside a
    # block narrower than ~3d: such stubs (the global coupling rows/columns
    # of real LPs) are escalated to a level that can host their degree
    def min_levels_for(deg):
        return np.searchsorted(widths_arr, 3 * deg, side="left").clip(
            0, n_levels - 1
        )

    row_min_level = min_levels_for(row_deg)
    col_min_level = min_levels_for(col_deg)

    def draw_partners(driving, min_level, partner_stubs):
        """Partner per driving stub from its hierarchical neighbourhood.

        Escape level ~ truncated geometric(coupling), floored at the
        driving vertex's min level; the partner is a degree-weighted stub
        (of the other axis) within the block at that level.
        """
        m = len(driving)
        lvl = np.minimum(
            rng.geometric(1.0 - coupling, size=m) - 1, n_levels - 1
        )
        lvl = np.maximum(lvl, min_level[driving])
        width = widths_arr[lvl]
        blk_lo = (driving // width) * width
        blk_hi = np.minimum(blk_lo + width, n)
        lo = np.searchsorted(partner_stubs, blk_lo)
        hi = np.searchsorted(partner_stubs, blk_hi)
        empty = hi <= lo  # block holds no stubs -> fall back global
        lo = np.where(empty, 0, lo)
        hi = np.where(empty, len(partner_stubs), hi)
        idx = lo + (rng.random(m) * (hi - lo)).astype(np.int64)
        out = partner_stubs[np.minimum(idx, len(partner_stubs) - 1)]
        # strongly escalated drivers are the global coupling rows/columns
        # of the LP: they touch *distinct* partners nearly uniformly, so a
        # degree-weighted pick (which piles onto other dense vertices and
        # dedupes away) would never let them realize their degree
        um = min_level[driving] >= 2
        if um.any():
            out[um] = blk_lo[um] + (
                rng.random(int(um.sum())) * (blk_hi[um] - blk_lo[um])
            ).astype(np.int64)
        return out

    # every stub drives once in each direction, so dense rows AND dense
    # columns both realize their degrees; the overshoot from generating
    # ~2x nnz candidates is subsampled back down, which scales all degrees
    # by a common factor and so preserves the distribution shape
    row_stubs_sorted = np.sort(row_stubs)
    rdrive = row_stubs.copy()
    rng.shuffle(rdrive)
    cdrive = col_stubs.copy()
    rng.shuffle(cdrive)
    rows = np.concatenate(
        [rdrive, draw_partners(cdrive, col_min_level, row_stubs_sorted)]
    )
    cols = np.concatenate(
        [draw_partners(rdrive, row_min_level, col_stubs), cdrive]
    )
    key = np.unique(rows * n + cols)
    if len(key) > nnz:
        # protect the entries of the pinned extreme-degree rows/columns so
        # the subsampling does not dilute the calibrated max degree
        top_rows = np.argsort(row_deg)[-2:]
        top_cols = np.argsort(col_deg)[-2:]
        protected = np.isin(key // n, top_rows) | np.isin(key % n, top_cols)
        prot = key[protected]
        rest = key[~protected]
        take = max(nnz - len(prot), 0)
        if take < len(rest):
            rest = rng.choice(rest, size=take, replace=False)
        key = np.concatenate([prot, rest])
    else:
        # rare: top up with fresh row-driven draws
        for _ in range(4):
            deficit = nnz - len(key)
            if deficit <= max(nnz // 100, 1):
                break
            er = rng.choice(row_stubs, size=int(deficit * 1.3))
            ec = draw_partners(er, row_min_level, col_stubs)
            key = np.unique(np.concatenate([key, er * n + ec]))
        if len(key) > nnz:
            key = rng.choice(key, size=nnz, replace=False)
    return _finalize(key // n, key % n, n, rng)


def staircase_matrix(
    n_stages: int,
    rows_per_stage: int,
    avg_row_nnz: float = 10.0,
    min_row_nnz: int = 1,
    coupling: float = 0.35,
    col_skew: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> sp.csr_matrix:
    """Staircase-structured matrix of a multistage stochastic program.

    Rows of stage *t* reference columns of stage *t* (probability
    ``1 - coupling``) and stage *t+1* (probability ``coupling``), as in the
    *pltexpA4-6* planning models: a banded block bidiagonal "staircase".
    ``col_skew > 1`` concentrates references on the low-index columns of
    each stage (the shared "linking" variables), producing the dense
    columns the real models have.
    """
    check_positive("n_stages", n_stages)
    check_positive("rows_per_stage", rows_per_stage)
    rng = as_rng(seed)
    n = n_stages * rows_per_stage
    lam = max(avg_row_nnz - min_row_nnz, 0.1)
    row_nnz = rng.poisson(lam, size=n) + min_row_nnz
    rows = np.repeat(np.arange(n), row_nnz)
    stage_of = rows // rows_per_stage
    go_next = (rng.random(len(rows)) < coupling) & (stage_of < n_stages - 1)
    target_stage = stage_of + go_next.astype(np.int64)
    u = rng.random(len(rows))
    within = np.minimum(
        (u**col_skew * rows_per_stage).astype(np.int64), rows_per_stage - 1
    )
    cols = target_stage * rows_per_stage + within
    return _finalize(rows, cols, n, rng)


def block_arrow_matrix(
    n_blocks: int,
    block_size: int,
    border: int,
    intra_degree: float = 6.0,
    border_degree_min: int = 16,
    border_degree_max: int = 1024,
    seed: int | np.random.Generator | None = None,
) -> sp.csr_matrix:
    """Block-diagonal matrix with a coupling border (arrowhead).

    The structural class of *finan512* (financial portfolio optimization):
    hundreds of nearly independent sparse blocks plus ``border`` coupling
    rows/columns whose degrees are drawn log-uniformly from
    ``[border_degree_min, border_degree_max]``, so a handful of rows touch a
    large fraction of all blocks while the typical degree stays tiny.
    """
    check_positive("n_blocks", n_blocks)
    check_positive("block_size", block_size)
    rng = as_rng(seed)
    core = n_blocks * block_size
    n = core + border
    # intra-block sparse symmetric couples
    nnz_block = int(core * intra_degree / 2)
    blk = rng.integers(0, n_blocks, size=nnz_block)
    r_in = rng.integers(0, block_size, size=nnz_block)
    c_in = rng.integers(0, block_size, size=nnz_block)
    br = blk * block_size + r_in
    bc = blk * block_size + c_in
    diag = np.arange(n)
    parts_r = [br, bc, diag]
    parts_c = [bc, br, diag]
    if border > 0:
        lo = np.log(border_degree_min)
        hi = np.log(max(border_degree_max, border_degree_min + 1))
        bdeg = np.exp(rng.uniform(lo, hi, size=border)).astype(np.int64)
        bdeg = np.clip(bdeg, 1, core - 1)
        bro = np.repeat(np.arange(core, n), bdeg)
        bco = rng.integers(0, core, size=len(bro))
        parts_r += [bro, bco]
        parts_c += [bco, bro]
    rows = np.concatenate(parts_r)
    cols = np.concatenate(parts_c)
    return _finalize(rows, cols, n, rng)


def banded_fem_matrix(
    n: int,
    bandwidth: int,
    avg_degree: float = 20.0,
    min_degree: int = 9,
    max_degree: int = 120,
    seed: int | np.random.Generator | None = None,
) -> sp.csr_matrix:
    """Banded symmetric-pattern matrix with variable row density.

    The structural class of *vibrobox* (vibro-acoustic FEM): every row
    couples only within a bandwidth window, with row densities spread
    between ``min_degree`` and ``max_degree`` around ``avg_degree``.
    """
    check_positive("n", n)
    check_positive("bandwidth", bandwidth)
    rng = as_rng(seed)
    # sample target half-degrees per row: a pareto tail on top of the
    # minimum, scaled so the mean lands near avg_degree / 2
    base = max((min_degree - 1) // 2, 1)
    pareto_mean = 1.0 / (2.5 - 1.0)
    scale = max((avg_degree / 2.0 - base) / pareto_mean, 0.0)
    half = (base + rng.pareto(2.5, size=n) * scale).astype(np.int64)
    half = np.clip(half, base, max_degree // 2)
    rows = np.repeat(np.arange(n), half)
    span = min(bandwidth, n - 1)
    offsets = rng.integers(1, span + 1, size=len(rows))
    cols = rows + offsets * rng.choice([-1, 1], size=len(rows))
    # drop (rather than clamp) out-of-range targets: clamping would pile
    # entries onto columns 0 and n-1 and blow past max_degree there
    ok = (cols >= 0) & (cols < n)
    rows, cols = rows[ok], cols[ok]
    diag = np.arange(n)
    all_rows = np.concatenate([rows, cols, diag])
    all_cols = np.concatenate([cols, rows, diag])
    return _finalize(all_rows, all_cols, n, rng)
