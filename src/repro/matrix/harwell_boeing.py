"""Harwell–Boeing (HB) matrix file reader/writer.

The paper's oldest test matrices (*sherman3*, *bcspwr10*) were distributed
in this fixed-column Fortran format [8].  Supporting it means the original
files run through this library unconverted.

Format recap (see Duff, Grimes & Lewis, ACM TOMS 1989): four header lines
(plus an optional fifth for right-hand sides), then the column pointers,
row indices and values in the Fortran formats the header declares.

Supported: RUA/RSA/PUA/PSA/IUA/ISA types (real/pattern/integer,
unsymmetric/symmetric assembled).  Symmetric storage is expanded.  Fortran
formats of the shapes ``(nIw)``, ``(nFw.d)``, ``(nEw.d)`` and ``(nDw.d)``
are parsed; exponents written with ``D`` are handled.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE

__all__ = ["read_harwell_boeing", "write_harwell_boeing"]

_FMT_RE = re.compile(
    r"^\s*\(\s*(?:\d+\s*)?[IiFfEeDdGg]\s*(\d+)", re.VERBOSE
)


def _field_width(fmt: str) -> int:
    """Extract the field width from a Fortran format like (10I8) or (5E16.8)."""
    m = re.match(r"\s*\(\s*\d*\s*[IiFfEeDdGg]\s*(\d+)", fmt)
    if not m:
        raise ValueError(f"unsupported Fortran format {fmt!r}")
    return int(m.group(1))


def _read_fixed(lines: list[str], count: int, width: int, convert):
    """Read *count* fixed-width fields from consecutive lines."""
    out = []
    for line in lines:
        line = line.rstrip("\n")
        for pos in range(0, len(line), width):
            tok = line[pos : pos + width].strip()
            if tok:
                out.append(convert(tok))
            if len(out) == count:
                return out
    if len(out) != count:
        raise ValueError(f"expected {count} fields, found {len(out)}")
    return out


def _to_float(tok: str) -> float:
    return float(tok.replace("D", "E").replace("d", "e"))


def read_harwell_boeing(path_or_file) -> sp.csr_matrix:
    """Parse an assembled Harwell–Boeing file into CSR."""
    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "r")
        close = True
    else:
        f = path_or_file
    try:
        lines = f.read().splitlines()
    finally:
        if close:
            f.close()
    if len(lines) < 4:
        raise ValueError("truncated Harwell-Boeing header")

    # line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD
    card_counts = [int(t) for t in lines[1].split()[:5]]
    while len(card_counts) < 5:
        card_counts.append(0)
    _tot, ptrcrd, indcrd, valcrd, rhscrd = card_counts

    # line 3: MXTYPE NROW NCOL NNZERO NELTVL
    parts = lines[2].split()
    mxtype = parts[0].upper()
    nrow, ncol, nnz = int(parts[1]), int(parts[2]), int(parts[3])
    if len(mxtype) != 3:
        raise ValueError(f"bad matrix type {mxtype!r}")
    value_type, symmetry, assembled = mxtype[0], mxtype[1], mxtype[2]
    if assembled != "A":
        raise ValueError("only assembled (..A) matrices are supported")
    if value_type not in "RPI":
        raise ValueError(f"unsupported value type {value_type!r}")
    if symmetry not in "US":
        raise ValueError(f"unsupported symmetry {symmetry!r} (only U/S)")

    # line 4: PTRFMT INDFMT VALFMT RHSFMT
    fmts = lines[3].split()
    ptr_w = _field_width(fmts[0])
    ind_w = _field_width(fmts[1])
    val_w = _field_width(fmts[2]) if value_type != "P" and len(fmts) > 2 else 0

    body_start = 4 + (1 if rhscrd > 0 else 0)
    pos = body_start
    ptr_lines = lines[pos : pos + ptrcrd]
    pos += ptrcrd
    ind_lines = lines[pos : pos + indcrd]
    pos += indcrd
    val_lines = lines[pos : pos + valcrd]

    colptr = np.asarray(
        _read_fixed(ptr_lines, ncol + 1, ptr_w, int), dtype=INDEX_DTYPE
    ) - 1
    rowind = np.asarray(
        _read_fixed(ind_lines, nnz, ind_w, int), dtype=INDEX_DTYPE
    ) - 1
    if value_type == "P":
        values = np.ones(nnz, dtype=np.float64)
    else:
        conv = _to_float if value_type == "R" else (lambda t: float(int(t)))
        values = np.asarray(_read_fixed(val_lines, nnz, val_w, conv))

    a = sp.csc_matrix((values, rowind, colptr), shape=(nrow, ncol))
    if symmetry == "S":
        lower = sp.tril(a, k=-1)
        a = a + lower.T
    return sp.csr_matrix(a)


def write_harwell_boeing(
    a: sp.spmatrix, path_or_file, title: str = "repro export", key: str = "REPRO"
) -> None:
    """Write *a* as an assembled RUA Harwell–Boeing file.

    Always writes the full (unsymmetric-storage) pattern with real values —
    the most portable HB flavour.
    """
    csc = sp.csc_matrix(a)
    csc.sort_indices()
    nrow, ncol, nnz = csc.shape[0], csc.shape[1], csc.nnz

    def cards(n_items: int, per_line: int) -> int:
        return (n_items + per_line - 1) // per_line

    ptr_per, ind_per, val_per = 10, 10, 4
    ptrcrd = cards(ncol + 1, ptr_per)
    indcrd = cards(nnz, ind_per)
    valcrd = cards(nnz, val_per)
    totcrd = ptrcrd + indcrd + valcrd

    def emit_ints(vals, per_line, width=8):
        out = []
        for i in range(0, len(vals), per_line):
            out.append("".join(f"{int(v):>{width}}" for v in vals[i : i + per_line]))
        return out

    def emit_reals(vals, per_line, width=20):
        out = []
        for i in range(0, len(vals), per_line):
            out.append(
                "".join(f"{float(v):>{width}.12E}" for v in vals[i : i + per_line])
            )
        return out

    lines = [
        f"{title:<72}{key:<8}",
        f"{totcrd:>14}{ptrcrd:>14}{indcrd:>14}{valcrd:>14}{0:>14}",
        f"{'RUA':<14}{nrow:>14}{ncol:>14}{nnz:>14}{0:>14}",
        f"{'(10I8)':<16}{'(10I8)':<16}{'(4E20.12)':<20}",
    ]
    lines += emit_ints(csc.indptr + 1, ptr_per)
    lines += emit_ints(csc.indices + 1, ind_per)
    lines += emit_reals(csc.data, val_per)

    close = False
    if isinstance(path_or_file, (str, Path)):
        f = open(path_or_file, "w")
        close = True
    else:
        f = path_or_file
    try:
        f.write("\n".join(lines) + "\n")
    finally:
        if close:
            f.close()
