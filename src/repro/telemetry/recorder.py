"""Recorders: where instrumented code sends its spans and counters.

Two implementations share the same duck-typed surface:

* :class:`NullRecorder` — the process-wide default.  Every operation is a
  no-op on pre-allocated singletons, so instrumentation left in hot paths
  costs one attribute lookup and an empty context-manager enter/exit.
  Crucially it allocates nothing and never touches an RNG, so partitioner
  results are bit-identical with telemetry off.
* :class:`TelemetryRecorder` — collects a forest of
  :class:`~repro.telemetry.record.SpanRecord` trees.  The span stack is
  thread-local (concurrent threads build disjoint subtrees) and the shared
  root list is lock-protected, so one recorder can serve a whole process.

Instrumented code uses the module-level *active recorder*::

    from repro.telemetry import get_recorder

    def hot_function():
        with get_recorder().span("phase", k=4) as sp:
            ...
            sp.add("items", n)

and callers opt in around a region::

    with use_recorder(TelemetryRecorder()) as rec:
        hot_function()
    print(render_tree(rec))

This module deliberately imports nothing from the rest of :mod:`repro`
(stdlib only) so every subpackage — including :mod:`repro._util` — may
depend on it without cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time

from repro.telemetry.record import SpanRecord

__all__ = [
    "NullRecorder",
    "TelemetryRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "scoped_recorder",
    "Timer",
]


class _NullSpan:
    """Inert stand-in for a :class:`SpanRecord`; one shared instance."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def add(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Zero-overhead recorder; the process default."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


class _SpanHandle:
    """Context manager that opens/closes one span on a recorder."""

    __slots__ = ("_rec", "_span")

    def __init__(self, rec: "TelemetryRecorder", name: str, attrs: dict):
        self._rec = rec
        self._span = SpanRecord(name, attrs)

    def __enter__(self) -> SpanRecord:
        rec = self._rec
        span = self._span
        span.t_start = rec._now()
        stack = rec._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with rec._lock:
                rec.roots.append(span)
        stack.append(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = self._rec
        span = self._span
        span.t_end = rec._now()
        if exc_type is not None:
            span.error = exc_type.__name__
        stack = rec._stack()
        # exception safety: close any unclosed inner spans too, then pop
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.t_end is None:
                dangling.t_end = span.t_end
        if stack:
            stack.pop()
        return False


class TelemetryRecorder:
    """Thread-safe in-process trace collector (see module docstring)."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        #: finished and in-flight top-level spans, in start order
        self.roots: list[SpanRecord] = []
        #: counters recorded with no span open
        self.orphan_counters: dict[str, int | float] = {}
        #: gauges recorded with no span open
        self.orphan_gauges: dict[str, float] = {}

    # -- internals ---------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording surface (duck-typed with NullRecorder) ------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a span named *name*; use as a context manager."""
        return _SpanHandle(self, name, attrs)

    def current(self) -> SpanRecord | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add(self, name: str, value: int | float = 1) -> None:
        """Increment counter *name* on the current span (or the orphan
        table when no span is open)."""
        cur = self.current()
        if cur is not None:
            cur.add(name, value)
        else:
            with self._lock:
                self.orphan_counters[name] = (
                    self.orphan_counters.get(name, 0) + value
                )

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* on the current span (or the orphan table)."""
        cur = self.current()
        if cur is not None:
            cur.gauge(name, value)
        else:
            with self._lock:
                self.orphan_gauges[name] = value

    # -- aggregation -------------------------------------------------------
    def counter_totals(self) -> dict[str, int | float]:
        """Every counter summed across the whole trace (plus orphans)."""
        totals: dict[str, int | float] = dict(self.orphan_counters)
        for root in self.roots:
            for span, _ in root.walk():
                for key, val in span.counters.items():
                    totals[key] = totals.get(key, 0) + val
        return totals

    def durations_by_name(self, self_time: bool = True) -> dict[str, float]:
        """Total seconds per span name.

        With ``self_time=True`` (default) each span contributes its own
        duration minus its children's, so the values partition the trace's
        wall time and recursive spans (e.g. nested bisections) are not
        double-counted.
        """
        out: dict[str, float] = {}
        for root in self.roots:
            for span, _ in root.walk():
                d = span.self_duration if self_time else span.duration
                out[span.name] = out.get(span.name, 0.0) + d
        return out


# -- the active recorder ---------------------------------------------------
#
# Two layers, consulted in order by :func:`get_recorder`:
#
# * a *context-local* override (:func:`scoped_recorder`) carried by a
#   ``contextvars.ContextVar`` — each asyncio task (and each thread that
#   enters the scope) sees its own recorder, so concurrent sweeps in one
#   process (the ``repro serve`` daemon, concurrent ``decompose()`` calls)
#   build disjoint traces instead of colliding on one global;
# * the legacy *process-wide* recorder (:func:`set_recorder` /
#   :func:`use_recorder`) — still what worker threads spawned by the
#   engine see, since fresh threads start with an empty context.
_ACTIVE: NullRecorder | TelemetryRecorder = NullRecorder()
_CONTEXT: contextvars.ContextVar[TelemetryRecorder | NullRecorder | None] = (
    contextvars.ContextVar("repro_telemetry_recorder", default=None)
)


def get_recorder() -> NullRecorder | TelemetryRecorder:
    """The active recorder: the context-local override if one is set in the
    calling context, else the process-wide recorder (a no-op one unless
    opted in)."""
    ctx = _CONTEXT.get()
    return ctx if ctx is not None else _ACTIVE


def set_recorder(rec: NullRecorder | TelemetryRecorder | None):
    """Install *rec* as the process-wide active recorder (``None`` restores
    the no-op default); returns the previously active recorder."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = rec if rec is not None else NullRecorder()
    return prev


@contextlib.contextmanager
def use_recorder(rec: TelemetryRecorder | None = None):
    """Context manager: activate *rec* (a fresh :class:`TelemetryRecorder`
    by default) process-wide for the enclosed block and restore the
    previous recorder afterwards.  Yields the activated recorder."""
    rec = rec if rec is not None else TelemetryRecorder()
    prev = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(prev)


@contextlib.contextmanager
def scoped_recorder(rec: TelemetryRecorder | NullRecorder | None = None):
    """Context manager: activate *rec* (a fresh :class:`TelemetryRecorder`
    by default) for the *current context only* — the calling asyncio task,
    or the calling thread until the scope exits.

    Unlike :func:`use_recorder` this never touches the process-wide
    recorder, so any number of scopes may be live concurrently (one per
    in-flight request in the partitioning service); instrumented code
    called inside the scope records into this recorder, code running in
    other tasks/threads is unaffected.  Yields the activated recorder.
    """
    rec = rec if rec is not None else TelemetryRecorder()
    token = _CONTEXT.set(rec)
    try:
        yield rec
    finally:
        _CONTEXT.reset(token)


class Timer:
    """Minimal wall-clock timer — kept as a thin shim over the telemetry
    clock so legacy call sites (and tests) continue to work.

    Usage::

        with Timer() as t:
            work()
        print(t.elapsed)

    When *name* is given and a real recorder is active, the timed region is
    also recorded as a span, so un-migrated call sites can join traces one
    keyword at a time.
    """

    def __init__(self, name: str | None = None, **attrs) -> None:
        self.elapsed = 0.0
        self._start = 0.0
        self._name = name
        self._attrs = attrs
        self._span_cm = None

    def __enter__(self) -> "Timer":
        if self._name is not None:
            rec = get_recorder()
            if rec.enabled:
                self._span_cm = rec.span(self._name, **self._attrs)
                self._span_cm.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._span_cm is not None:
            self._span_cm.__exit__(exc_type, exc, tb)
            self._span_cm = None
