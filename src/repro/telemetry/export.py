"""Exporters: turn a recorded trace into something a human or tool reads.

Three formats, matching the three consumers of telemetry:

* :func:`render_tree` — indented text tree with durations, attributes and
  counters; what ``repro profile`` prints to the terminal;
* :func:`write_ndjson` / :func:`read_ndjson` — one JSON object per line
  (a ``trace`` header, then each span in depth-first order with parent
  ids), the archival event-log format; round-trips losslessly;
* :func:`trace_to_dict` — flat JSON-ready summary (per-phase self-times,
  aggregated counters, the span list) designed to be embedded into
  benchmark result files (``BENCH_*.json`` style rows).
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.telemetry.record import SpanRecord
from repro.telemetry.recorder import TelemetryRecorder

__all__ = [
    "render_tree",
    "write_ndjson",
    "read_ndjson",
    "trace_to_dict",
]

NDJSON_VERSION = 1


def _roots_of(trace: TelemetryRecorder | Iterable[SpanRecord]) -> list[SpanRecord]:
    if isinstance(trace, TelemetryRecorder):
        return list(trace.roots)
    return list(trace)


def _fmt_value(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def _fmt_kv(d: dict) -> str:
    return " ".join(f"{k}={_fmt_value(v)}" for k, v in d.items())


def render_tree(
    trace: TelemetryRecorder | Iterable[SpanRecord],
    max_depth: int | None = None,
    min_duration: float = 0.0,
    counters: bool = True,
) -> str:
    """Human-readable indented span tree.

    ``max_depth`` prunes deep recursions (children beyond the cutoff are
    summarized into a ``… n spans`` line); ``min_duration`` (seconds) hides
    spans too quick to matter.  Durations are printed in milliseconds.
    """
    lines: list[str] = []

    def emit(span: SpanRecord, depth: int) -> None:
        if span.duration < min_duration and depth > 0:
            return
        indent = "  " * depth
        label = f"{indent}{span.name}"
        dur = f"{span.duration * 1e3:10.2f} ms"
        extra = []
        if span.attrs:
            extra.append(_fmt_kv(span.attrs))
        if counters and span.counters:
            extra.append(_fmt_kv(span.counters))
        if span.gauges:
            extra.append(_fmt_kv(span.gauges))
        if span.error:
            extra.append(f"!{span.error}")
        suffix = ("  " + " | ".join(extra)) if extra else ""
        lines.append(f"{label:<44}{dur}{suffix}")
        if max_depth is not None and depth + 1 > max_depth:
            hidden = sum(1 for _ in span.walk()) - 1
            if hidden:
                lines.append(f"{indent}  … {hidden} nested span(s)")
            return
        for child in span.children:
            emit(child, depth + 1)

    for root in _roots_of(trace):
        emit(root, 0)
    return "\n".join(lines)


# -- NDJSON ----------------------------------------------------------------
def _span_obj(span: SpanRecord, sid: int, parent: int | None) -> dict:
    return {
        "type": "span",
        "id": sid,
        "parent": parent,
        "name": span.name,
        "start": span.t_start,
        "end": span.t_end,
        "duration": span.duration,
        "attrs": span.attrs,
        "counters": span.counters,
        "gauges": span.gauges,
        "error": span.error,
    }


def write_ndjson(
    trace: TelemetryRecorder | Iterable[SpanRecord],
    fp: IO[str] | str,
) -> int:
    """Write the trace as NDJSON to *fp* (a path or text file object).

    Returns the number of lines written.  The first line is a ``trace``
    header carrying the format version and any orphan counters/gauges;
    subsequent lines are spans in depth-first order with ``id``/``parent``
    links, so :func:`read_ndjson` can rebuild the exact tree.
    """
    if isinstance(fp, str):
        with open(fp, "w") as f:
            return write_ndjson(trace, f)

    orphan_counters: dict = {}
    orphan_gauges: dict = {}
    if isinstance(trace, TelemetryRecorder):
        orphan_counters = trace.orphan_counters
        orphan_gauges = trace.orphan_gauges

    header = {
        "type": "trace",
        "version": NDJSON_VERSION,
        "orphan_counters": orphan_counters,
        "orphan_gauges": orphan_gauges,
    }
    fp.write(json.dumps(header) + "\n")
    n = 1
    next_id = 0

    def emit(span: SpanRecord, parent: int | None) -> None:
        nonlocal n, next_id
        sid = next_id
        next_id += 1
        fp.write(json.dumps(_span_obj(span, sid, parent)) + "\n")
        n += 1
        for child in span.children:
            emit(child, sid)

    for root in _roots_of(trace):
        emit(root, None)
    return n


def read_ndjson(fp: IO[str] | str) -> tuple[list[SpanRecord], dict]:
    """Parse an NDJSON trace back into ``(roots, orphan_counters)``."""
    if isinstance(fp, str):
        with open(fp) as f:
            return read_ndjson(f)

    roots: list[SpanRecord] = []
    by_id: dict[int, SpanRecord] = {}
    orphan_counters: dict = {}
    for line in fp:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj["type"] == "trace":
            orphan_counters = obj.get("orphan_counters", {})
            continue
        if obj["type"] != "span":  # ignore unknown event types
            continue
        span = SpanRecord(obj["name"], obj.get("attrs"), obj.get("start", 0.0))
        span.t_end = obj.get("end")
        span.counters = dict(obj.get("counters", {}))
        span.gauges = dict(obj.get("gauges", {}))
        span.error = obj.get("error")
        by_id[obj["id"]] = span
        parent = obj.get("parent")
        if parent is None:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    return roots, orphan_counters


# -- flat JSON -------------------------------------------------------------
def trace_to_dict(rec: TelemetryRecorder, spans: bool = True) -> dict:
    """JSON-ready flat summary of a recorded trace.

    Keys: ``phases`` (self-time seconds per span name — values sum to the
    traced wall time), ``counters`` (aggregated totals), and, when *spans*
    is true, ``spans`` (the depth-first flat span list).
    """
    out = {
        "phases": rec.durations_by_name(self_time=True),
        "counters": rec.counter_totals(),
    }
    if spans:
        flat: list[dict] = []
        next_id = 0

        def emit(span: SpanRecord, parent: int | None) -> None:
            nonlocal next_id
            sid = next_id
            next_id += 1
            flat.append(_span_obj(span, sid, parent))
            for child in span.children:
                emit(child, sid)

        for root in rec.roots:
            emit(root, None)
        out["spans"] = flat
    return out
