"""Structured tracing, counters and profiling for the whole pipeline.

The subsystem has three layers:

* :mod:`repro.telemetry.record` — the :class:`SpanRecord` tree nodes;
* :mod:`repro.telemetry.recorder` — the zero-overhead :class:`NullRecorder`
  default, the thread-safe :class:`TelemetryRecorder`, and the
  process-wide active-recorder accessors;
* :mod:`repro.telemetry.export` — text-tree, NDJSON and flat-JSON
  exporters.

Instrumentation contract (see ``docs/telemetry.md`` for naming
conventions): library code records through :func:`get_recorder` and must
behave identically whether or not a real recorder is active — telemetry
never touches RNG state and never changes results.

Quick start::

    from repro.telemetry import TelemetryRecorder, use_recorder, render_tree

    with use_recorder() as rec:
        partition_hypergraph(h, 4, seed=0)
    print(render_tree(rec))

This package imports only the standard library, so every other
:mod:`repro` subpackage (including :mod:`repro._util`) may depend on it.
"""

from repro.telemetry.export import (
    read_ndjson,
    render_tree,
    trace_to_dict,
    write_ndjson,
)
from repro.telemetry.record import SpanRecord
from repro.telemetry.recorder import (
    NullRecorder,
    TelemetryRecorder,
    Timer,
    get_recorder,
    scoped_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "SpanRecord",
    "NullRecorder",
    "TelemetryRecorder",
    "Timer",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "scoped_recorder",
    "render_tree",
    "write_ndjson",
    "read_ndjson",
    "trace_to_dict",
]
