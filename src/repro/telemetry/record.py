"""The span record: one timed region of the pipeline.

A trace is a forest of :class:`SpanRecord` trees.  Each span carries

* **attributes** — key/value facts known about the region (``k=16``,
  ``vertices=1024``); set at open time or later via :meth:`set`;
* **counters** — monotonically accumulated quantities scoped to the span
  (``fm.moves``, ``spmv.expand.words``); incremented via :meth:`add`;
* **gauges** — last-write-wins measurements (``shrink=0.42``).

Spans are plain mutable objects with no clock of their own; the recorder
stamps ``t_start``/``t_end`` as offsets from its epoch so traces are
relocatable and trivially serializable.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["SpanRecord"]


class SpanRecord:
    """One node of the span tree.  See the module docstring."""

    __slots__ = (
        "name",
        "attrs",
        "t_start",
        "t_end",
        "children",
        "counters",
        "gauges",
        "error",
    )

    def __init__(self, name: str, attrs: dict | None = None, t_start: float = 0.0):
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.t_start = t_start
        self.t_end: float | None = None
        self.children: list[SpanRecord] = []
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        #: exception type name if the span body raised, else None
        self.error: str | None = None

    # -- mutation (used by instrumented code through the recorder) ---------
    def set(self, **attrs) -> "SpanRecord":
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)
        return self

    def add(self, name: str, value: int | float = 1) -> None:
        """Increment counter *name* by *value* on this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* on this span (last write wins)."""
        self.gauges[name] = value

    # -- inspection --------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds between open and close (0.0 while open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def self_duration(self) -> float:
        """Duration minus the duration of direct children (own work)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self, depth: int = 0) -> Iterator[tuple["SpanRecord", int]]:
        """Depth-first iteration over this span and its descendants."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> list["SpanRecord"]:
        """All descendant spans (including self) named *name*."""
        return [s for s, _ in self.walk() if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )
